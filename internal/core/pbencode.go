package core

import (
	"context"
	"math"
	"math/bits"

	"tels/internal/ilp"
	"tels/internal/logic"
	"tels/internal/pbsat"
	"tels/internal/simplex"
)

// This file encodes the Fig. 6 ON/OFF cube system as a pseudo-Boolean
// satisfiability instance: each weight and the threshold are bit-blasted
// (wᵢ = Σ 2ʲ·bᵢⱼ), each ON cube becomes Σ_{lits} wᵢ − T ≥ δon and each
// OFF cube T − Σ_{dc} wᵢ ≥ δoff, all native linear constraints of
// internal/pbsat. Deciding climbs a geometric objective ladder:
//
// For an increasing bound B the solver asks "is there a realization with
// Σw + T ≤ B?" over a domain of bitlen(B) bits. Any solution with
// objective ≤ B has every weight and the threshold ≤ B, so the rung's
// domain contains ALL such solutions: a rung UNSAT rules out objective
// ≤ B entirely (over unbounded integers), and the first SAT rung
// contains the global optimum, which a Tighten descend loop then pins
// down exactly — its final UNSAT-at-k*−1 proof runs over the smallest
// domain that can express the optimum. The ladder ends at
// Bmax = 2·n·capW, where capW is Muroga's weight bound (any threshold
// function of n variables has an integer realization with weights
// ≤ (n+1)^((n+1)/2)/2ⁿ, scaled by the margin c = δon+δoff) or the user
// weight cap: every capped realization has Σw ≤ n·capW and T ≤ Σw (from
// any ON cube), so UNSAT at Bmax is a proof of non-thresholdness.
//
// Climbing matters because refutation effort is exponential in domain
// bits: small rungs are cheap to refute, and SAT instances never touch a
// domain wider than ~4× their optimum.
//
// The engine proves only the verdict and k*; the canonical weight vector
// is always extracted by the (cutoff-bounded) ILP so all solver modes
// return identical bytes.

type pbVerdict int

const (
	pbUnknown pbVerdict = iota
	pbSat
	pbUnsat
)

// murogaCap returns the stage-1 per-weight domain cap for an n-variable
// positive-unate function at margin scale c: the margin-scaled Muroga
// bound (any threshold function of n variables has an integer realization
// with weights ≤ (n+1)^((n+1)/2)/2ⁿ; scaling a unit-margin realization by
// c yields a margin-c one). The +1 absorbs the ceil's float error; wider
// slack would cost a domain bit, and refutation effort is exponential in
// domain bits.
func murogaCap(n, c int) int64 {
	if c < 1 {
		c = 1
	}
	m := math.Pow(float64(n+1), float64(n+1)/2) / math.Pow(2, float64(n))
	return int64(c) * (int64(math.Ceil(m)) + 1)
}

// pbEnc is one instantiated encoding.
type pbEnc struct {
	s     *pbsat.Solver
	wbits [][]int // wbits[i][j]: bit j of weight i
	tbits []int
	obj   []pbsat.Term // Σw + T
}

// buildPBEnc encodes sys with wb bits per weight and tb threshold bits.
// maxW > 0 additionally caps each weight (the encoding domain may be the
// next power of two above the cap). objCap ≥ 0 installs Σw+T ≤ objCap
// and returns its tightenable handle.
func buildPBEnc(sys *checkSystem, wb, tb int, maxW, objCap int64) (*pbEnc, pbsat.PBRef) {
	e := &pbEnc{s: pbsat.New()}
	e.wbits = make([][]int, sys.n)
	for i := range e.wbits {
		e.wbits[i] = make([]int, wb)
		for j := range e.wbits[i] {
			v := e.s.NewVar()
			e.wbits[i][j] = v
			// Branch most-significant bits first: high bits move the cube
			// sums in large steps, so PB propagation fixes the low bits.
			// Without this the search degenerates (uninformed branching
			// over a bit-blast learns near-vacuous clauses).
			e.s.SeedActivity(v, float64(int64(1)<<uint(j)))
		}
	}
	e.tbits = make([]int, tb)
	for j := range e.tbits {
		v := e.s.NewVar()
		e.tbits[j] = v
		e.s.SeedActivity(v, float64(int64(1)<<uint(j)))
	}

	weightTerms := func(i int, sign int64) []pbsat.Term {
		ts := make([]pbsat.Term, wb)
		for j, v := range e.wbits[i] {
			ts[j] = pbsat.Term{Coef: sign << uint(j), Lit: pbsat.MkLit(v, false)}
		}
		return ts
	}
	tTerms := func(sign int64) []pbsat.Term {
		ts := make([]pbsat.Term, tb)
		for j, v := range e.tbits {
			ts[j] = pbsat.Term{Coef: sign << uint(j), Lit: pbsat.MkLit(v, false)}
		}
		return ts
	}

	on, off := sys.covers()
	// ON cubes: Σ_{lits} w − T ≥ δon.
	for _, c := range on {
		var terms []pbsat.Term
		for i, ph := range c {
			if ph == logic.Pos {
				terms = append(terms, weightTerms(i, 1)...)
			}
		}
		terms = append(terms, tTerms(-1)...)
		e.s.AddGE(terms, int64(sys.don))
	}
	// OFF cubes: T − Σ_{dc} w ≥ δoff.
	for _, c := range off {
		terms := tTerms(1)
		for i, ph := range c {
			if ph == logic.DC {
				terms = append(terms, weightTerms(i, -1)...)
			}
		}
		e.s.AddGE(terms, int64(sys.doff))
	}
	// Per-weight cap, when it bites below the domain's power of two.
	if maxW > 0 && maxW < (int64(1)<<uint(wb))-1 {
		for i := 0; i < sys.n; i++ {
			e.s.AddLE(weightTerms(i, 1), maxW)
		}
	}

	e.obj = make([]pbsat.Term, 0, sys.n*wb+tb)
	for i := 0; i < sys.n; i++ {
		e.obj = append(e.obj, weightTerms(i, 1)...)
	}
	e.obj = append(e.obj, tTerms(1)...)

	var ref pbsat.PBRef
	if objCap >= 0 {
		ref = e.s.AddLE(e.obj, objCap)
	}
	return e, ref
}

// objValue sums the objective over the last model.
func (e *pbEnc) objValue() int64 {
	var sum int64
	for _, t := range e.obj {
		if e.s.Value(t.Lit.Var()) {
			sum += t.Coef
		}
	}
	return sum
}

// solveWithin runs one Solve call against the remaining conflict budget,
// decrementing it by the conflicts actually spent.
func (e *pbEnc) solveWithin(ctx context.Context, budget *int64) pbsat.Status {
	if *budget <= 0 {
		return pbsat.Unknown
	}
	e.s.MaxConflicts = *budget
	before := e.s.Conflicts()
	st := e.s.Solve(ctx)
	*budget -= e.s.Conflicts() - before
	return st
}

// pbDecide runs the two-stage decision and returns the verdict with the
// proven optimal objective k* on pbSat.
func (c *Checker) pbDecide(ctx context.Context, sys *checkSystem) (pbVerdict, int64) {
	budget := c.MaxConflicts
	if budget == 0 {
		budget = DefaultPbsatConflicts
	}

	// Root-relaxation presolve: one LP solve answers most instances
	// outright. Rational infeasibility of the cube system implies integer
	// infeasibility (and carries a Farkas certificate the simplex finds in
	// one solve, while a clause-learning refutation of the bit-blast is
	// exponential in the domain width); an integral root is a proven
	// optimum, whose objective is exactly the k* the ladder would pin
	// down. Only *proven* verdicts are trusted; anything else falls
	// through to the pseudo-Boolean engine.
	probe := c.ILP
	probe.MaxNodes = 1
	if res := probe.SolveContext(ctx, sys.problem()); res.Proven() {
		if res.Status == ilp.Infeasible {
			return pbUnsat, 0
		}
		return pbSat, int64(objOf(res.X))
	}

	// A fractional root still lower-bounds the integer optimum. The
	// ladder starts at the bound — no rung below it can be satisfiable,
	// so CDCL never has to refute one — and the descend loop stops the
	// moment the incumbent meets it, sparing the final UNSAT-at-k*−1
	// proof. Those counting refutations (e.g. "no AND-of-8 realization
	// with Σw+T ≤ 20") are exactly where clause learning thrashes.
	var lower int64
	if lp := simplex.Solve(sys.problem()); lp.Status == simplex.Optimal {
		lower = int64(math.Ceil(lp.Objective - 1e-9))
	}

	// The objective ladder. capW bounds the weight domain of the final
	// rung; Bmax bounds the objective of any capW-capped realization.
	capW := int64(sys.maxW)
	if capW <= 0 {
		capW = murogaCap(sys.n, sys.don+sys.doff)
	}
	bMax := 2 * int64(sys.n) * capW
	b := int64(2 * (sys.n + sys.don + sys.doff)) // a unit-weight realization's scale
	if b < lower {
		b = lower
	}
	if b > bMax {
		b = bMax
	}
	for {
		wb := bits.Len64(uint64(min(b, capW)))
		tb := bits.Len64(uint64(min(b, int64(sys.n)*((int64(1)<<uint(wb))-1))))
		if tb == 0 {
			tb = 1
		}
		enc, ref := buildPBEnc(sys, wb, tb, int64(sys.maxW), b)
		best := int64(-1)
	rung:
		for {
			switch enc.solveWithin(ctx, &budget) {
			case pbsat.Sat:
				best = enc.objValue()
				if best <= lower {
					// The incumbent meets the LP lower bound: optimal,
					// no refutation needed.
					return pbSat, best
				}
				enc.s.Tighten(ref, best-1)
			case pbsat.Unsat:
				if best >= 0 {
					// The rung's domain holds every solution with
					// objective ≤ b ≥ best, so best is the global optimum.
					return pbSat, best
				}
				break rung // no realization with objective ≤ b exists
			default:
				return pbUnknown, 0
			}
		}
		if b >= bMax {
			return pbUnsat, 0
		}
		b *= 4
		if b > bMax {
			b = bMax
		}
	}
}
