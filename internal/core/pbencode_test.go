package core

import (
	"context"
	"math/bits"
	"testing"

	"tels/internal/pbsat"
	"tels/internal/truth"
)

// TestPBRefutationDirect drives the pseudo-Boolean engine on the raw
// stage-1 encoding — bypassing pbDecide's root-relaxation presolve — so
// the genuine clause-learning UNSAT path over the Muroga domain stays
// exercised: x0·x1 + x2·x3 is unate with full support but not threshold.
func TestPBRefutationDirect(t *testing.T) {
	tt := truth.New(4)
	for m := 0; m < tt.Size(); m++ {
		tt.Set(m, (m&1 != 0 && m&2 != 0) || (m&4 != 0 && m&8 != 0))
	}
	sys, ok := buildCheckSystem(tt, 0, 1, 0)
	if !ok {
		t.Fatal("buildCheckSystem rejected a unate function")
	}
	capW := murogaCap(sys.n, sys.don+sys.doff)
	wb := bits.Len64(uint64(capW))
	tb := bits.Len64(uint64(int64(sys.n) * ((int64(1) << uint(wb)) - 1)))
	enc, _ := buildPBEnc(sys, wb, tb, 0, -1)
	if st := enc.s.Solve(context.Background()); st != pbsat.Unsat {
		t.Fatalf("stage-1 refutation: got %v, want unsat (conflicts=%d)", st, enc.s.Conflicts())
	}
}

// TestPBDecideSat drives pbDecide end to end on majority-of-3 and checks
// the proven optimum matches the ILP objective: weights ⟨1,1,1⟩, T=2,
// objective 5.
func TestPBDecideSat(t *testing.T) {
	tt := truth.New(3)
	for m := 0; m < tt.Size(); m++ {
		tt.Set(m, bits.OnesCount(uint(m)) >= 2)
	}
	sys, ok := buildCheckSystem(tt, 0, 1, 0)
	if !ok {
		t.Fatal("buildCheckSystem rejected majority")
	}
	c := Checker{Mode: SolverPbsat, NoCache: true}
	st, k := c.pbDecide(context.Background(), sys)
	if st != pbSat || k != 5 {
		t.Fatalf("pbDecide = %d, k=%d; want sat with k*=5", st, k)
	}
}
