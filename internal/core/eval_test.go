package core

import (
	"math/rand"
	"testing"
)

func TestEvaluatorMatchesEval(t *testing.T) {
	tn := sampleTN(t)
	ev, err := tn.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	var out []bool
	for m := 0; m < 8; m++ {
		in := map[string]bool{"a": m&1 != 0, "b": m&2 != 0, "c": m&4 != 0}
		want, err := tn.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err = ev.Eval(in, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(want) || out[0] != want[0] {
			t.Fatalf("evaluator differs at %d: %v vs %v", m, out, want)
		}
	}
}

func TestEvaluatorPerturbedZeroNoise(t *testing.T) {
	tn := sampleTN(t)
	ev, err := tn.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	noise := make([][]float64, len(ev.GateOrder()))
	for i, g := range ev.GateOrder() {
		noise[i] = make([]float64, len(g.Weights))
	}
	var a, b []bool
	for m := 0; m < 8; m++ {
		in := map[string]bool{"a": m&1 != 0, "b": m&2 != 0, "c": m&4 != 0}
		a, err = ev.Eval(in, a)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]bool(nil), a...)
		b, err = ev.EvalPerturbed(in, noise, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != b[i] {
				t.Fatalf("zero-noise perturbed eval differs at %d", m)
			}
		}
	}
}

func TestEvaluatorMissingInput(t *testing.T) {
	tn := sampleTN(t)
	ev, err := tn.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(map[string]bool{"a": true}, nil); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEvaluatorOnSynthesizedNetwork(t *testing.T) {
	nw := fig2a()
	tn, _, err := Synthesize(nw, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tn.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var out []bool
	for iter := 0; iter < 200; iter++ {
		in := map[string]bool{}
		for _, name := range tn.Inputs {
			in[name] = rng.Intn(2) == 1
		}
		want, err := tn.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err = ev.Eval(in, out)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != out[i] {
				t.Fatalf("iter %d: evaluator mismatch", iter)
			}
		}
	}
}

func TestEvaluatorRejectsUndriven(t *testing.T) {
	tn := NewNetwork("bad")
	tn.AddInput("a")
	// Force an undriven output past AddGate validation.
	tn.Outputs = append(tn.Outputs, "ghost")
	if _, err := tn.NewEvaluator(); err == nil {
		t.Fatal("undriven output accepted")
	}
}
