package core

import "fmt"

// Evaluator evaluates a threshold network repeatedly without re-sorting
// the DAG or allocating per call. It is not safe for concurrent use.
type Evaluator struct {
	tn        *Network
	order     []*Gate
	signalIdx map[string]int // signal name -> slot in values
	gateIn    [][]int        // per ordered gate: input slots
	gateSlot  []int          // per ordered gate: output slot
	outSlots  []int
	values    []bool
}

// NewEvaluator prepares a fast evaluator for the network.
func (tn *Network) NewEvaluator() (*Evaluator, error) {
	order, err := tn.TopoGates()
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{
		tn:        tn,
		order:     order,
		signalIdx: make(map[string]int, len(tn.Inputs)+len(order)),
	}
	for _, in := range tn.Inputs {
		ev.signalIdx[in] = len(ev.values)
		ev.values = append(ev.values, false)
	}
	for _, g := range order {
		ev.signalIdx[g.Name] = len(ev.values)
		ev.values = append(ev.values, false)
	}
	for _, g := range order {
		ins := make([]int, len(g.Inputs))
		for i, in := range g.Inputs {
			slot, ok := ev.signalIdx[in]
			if !ok {
				return nil, fmt.Errorf("core: gate %s input %s is undriven", g.Name, in)
			}
			ins[i] = slot
		}
		ev.gateIn = append(ev.gateIn, ins)
		ev.gateSlot = append(ev.gateSlot, ev.signalIdx[g.Name])
	}
	for _, o := range tn.Outputs {
		slot, ok := ev.signalIdx[o]
		if !ok {
			return nil, fmt.Errorf("core: output %s is undriven", o)
		}
		ev.outSlots = append(ev.outSlots, slot)
	}
	return ev, nil
}

// GateOrder exposes the evaluation order, aligned with the noise slices
// accepted by EvalPerturbed.
func (ev *Evaluator) GateOrder() []*Gate { return ev.order }

// setInputs loads the input assignment into the value slots.
func (ev *Evaluator) setInputs(inputs map[string]bool) error {
	for _, in := range ev.tn.Inputs {
		v, ok := inputs[in]
		if !ok {
			return fmt.Errorf("core: no value for input %s", in)
		}
		ev.values[ev.signalIdx[in]] = v
	}
	return nil
}

// Eval computes the outputs for one input assignment. The returned slice
// is reused across calls.
func (ev *Evaluator) Eval(inputs map[string]bool, out []bool) ([]bool, error) {
	if err := ev.setInputs(inputs); err != nil {
		return nil, err
	}
	for gi, g := range ev.order {
		sum := 0
		for i, slot := range ev.gateIn[gi] {
			if ev.values[slot] {
				sum += g.Weights[i]
			}
		}
		ev.values[ev.gateSlot[gi]] = sum >= g.T
	}
	return ev.collect(out), nil
}

// EvalPerturbed computes the outputs with per-gate weight noise: noise[gi]
// is aligned with GateOrder()[gi].Weights.
func (ev *Evaluator) EvalPerturbed(inputs map[string]bool, noise [][]float64, out []bool) ([]bool, error) {
	if err := ev.setInputs(inputs); err != nil {
		return nil, err
	}
	for gi, g := range ev.order {
		sum := 0.0
		ns := noise[gi]
		for i, slot := range ev.gateIn[gi] {
			if ev.values[slot] {
				sum += float64(g.Weights[i]) + ns[i]
			}
		}
		ev.values[ev.gateSlot[gi]] = sum >= float64(g.T)
	}
	return ev.collect(out), nil
}

func (ev *Evaluator) collect(out []bool) []bool {
	out = out[:0]
	for _, slot := range ev.outSlots {
		out = append(out, ev.values[slot])
	}
	return out
}
