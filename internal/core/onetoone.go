package core

import (
	"fmt"

	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/truth"
)

// OneToOne builds the paper's baseline: the Boolean network is decomposed
// into simple gates (AND/OR/NOT/BUF) honouring the fanin restriction, and
// every gate — inverters included, as in the paper's motivational example —
// is replaced by one threshold gate whose weights come from the same ILP
// used by the synthesizer.
func OneToOne(src *network.Network, o Options) (*Network, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	dec := opt.TechDecomp(src, o.Fanin)
	out := NewNetwork(src.Name)
	for _, in := range dec.Inputs {
		out.AddInput(in.Name)
	}
	chk := o.Checker()
	order, err := dec.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		don := o.DeltaOnFor(n.Name)
		tt := truth.FromCover(n.Cover)
		if isConst, v := tt.IsConst(); isConst {
			t := o.DeltaOff
			if t < 1 {
				t = 1
			}
			if v {
				t = -don
			}
			if err := out.AddGate(&Gate{Name: n.Name, T: t}); err != nil {
				return nil, err
			}
			continue
		}
		vec, ok := chk.Check(tt, don, o.DeltaOff, o.MaxWeight)
		if !ok {
			return nil, fmt.Errorf("core: one-to-one gate %s is not threshold (cover %v)", n.Name, n.Cover)
		}
		inputs := make([]string, len(n.Fanins))
		for i, f := range n.Fanins {
			inputs[i] = f.Name
		}
		if err := out.AddGate(&Gate{Name: n.Name, Inputs: inputs, Weights: vec.Weights, T: vec.T}); err != nil {
			return nil, err
		}
	}
	for _, o := range dec.Outputs {
		out.MarkOutput(o.Name)
	}
	out.MergeDuplicates()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// SynthesizeBest implements the paper's §VI-A remark that "we can always
// choose the better of the two networks": it runs both TELS and the
// one-to-one mapping on the network and returns whichever needs fewer
// gates (area breaks ties), so the result is never worse than the
// baseline. The returned flag reports whether TELS won.
func SynthesizeBest(src *network.Network, o Options) (*Network, bool, error) {
	tels, _, err := Synthesize(src, o)
	if err != nil {
		return nil, false, err
	}
	oneToOne, err := OneToOne(src, o)
	if err != nil {
		return nil, false, err
	}
	ts, os := tels.Stats(), oneToOne.Stats()
	if ts.Gates < os.Gates || (ts.Gates == os.Gates && ts.Area <= os.Area) {
		return tels, true, nil
	}
	return oneToOne, false, nil
}
