package core

import "testing"

// FuzzParseTLN checks that the .tln parser never panics and that accepted
// networks round trip.
func FuzzParseTLN(f *testing.F) {
	seeds := []string{
		"",
		".tnet t\n.inputs a b\n.outputs f\n.gate f = [T=2] +1*a +1*b\n.end",
		".tnet t\n.inputs a\n.outputs f\n.gate f = [T=0] -1*a\n.end",
		".tnet t\n.inputs a\n.outputs f\n.gate f = [T=1]\n.end",
		".gate f = [T=x] +1*a",
		".gate f [T=1] 1*a",
		".tnet\n.end",
		"# comment\n.tnet c\n.inputs a\n.outputs a\n.end",
		".tnet t\n.inputs a\n.outputs f\n.gate f = [T=1] +1*\n.end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tn, err := ParseTLNString(input)
		if err != nil {
			return
		}
		back, err := ParseTLNString(tn.String())
		if err != nil {
			t.Fatalf("accepted network failed to re-parse: %v\n%s", err, tn)
		}
		if len(back.Gates) != len(tn.Gates) || len(back.Inputs) != len(tn.Inputs) {
			t.Fatalf("round trip changed shape")
		}
	})
}
