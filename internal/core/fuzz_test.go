package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzParseTLN checks that the .tln parser never panics and that accepted
// networks round trip.
func FuzzParseTLN(f *testing.F) {
	seeds := []string{
		"",
		".tnet t\n.inputs a b\n.outputs f\n.gate f = [T=2] +1*a +1*b\n.end",
		".tnet t\n.inputs a\n.outputs f\n.gate f = [T=0] -1*a\n.end",
		".tnet t\n.inputs a\n.outputs f\n.gate f = [T=1]\n.end",
		".gate f = [T=x] +1*a",
		".gate f [T=1] 1*a",
		".tnet\n.end",
		"# comment\n.tnet c\n.inputs a\n.outputs a\n.end",
		".tnet t\n.inputs a\n.outputs f\n.gate f = [T=1] +1*\n.end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tn, err := ParseTLNString(input)
		if err != nil {
			return
		}
		back, err := ParseTLNString(tn.String())
		if err != nil {
			t.Fatalf("accepted network failed to re-parse: %v\n%s", err, tn)
		}
		if len(back.Gates) != len(tn.Gates) || len(back.Inputs) != len(tn.Inputs) {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzPortfolio differentially tests the pbsat engine against the ILP on
// random unate tables: the verdicts must match, and on SAT both engines
// must return the same minimal objective Σ|wᵢ|+T′ — in fact the identical
// vector, since pbsat extracts through the cutoff-bounded ILP.
func FuzzPortfolio(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint8(1), uint8(0))
	f.Add(int64(7), uint8(5), uint8(1), uint8(2), uint8(0))
	f.Add(int64(23), uint8(6), uint8(0), uint8(1), uint8(5))
	f.Add(int64(-99), uint8(3), uint8(2), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nb, donb, doffb, maxWb uint8) {
		n := 2 + int(nb)%5 // 2..6
		don := int(donb) % 3
		doff := 1 + int(doffb)%2
		maxW := int(maxWb) % 8
		if maxW != 0 && maxW < don+doff {
			maxW = don + doff
		}
		rng := rand.New(rand.NewSource(seed))
		tt := randomUnate(rng, n)
		if isConst, _ := tt.IsConst(); isConst {
			return
		}

		ilpC := Checker{Mode: SolverILP, NoCache: true}
		pbC := Checker{Mode: SolverPbsat, NoCache: true}
		vIlp, okIlp := ilpC.Check(tt, don, doff, maxW)
		vPb, okPb := pbC.Check(tt, don, doff, maxW)
		if okIlp != okPb {
			t.Fatalf("verdicts differ: ilp=%v pbsat=%v (f=%s don=%d doff=%d maxW=%d)",
				okIlp, okPb, tt, don, doff, maxW)
		}
		if !okIlp {
			return
		}
		if !reflect.DeepEqual(vIlp, vPb) {
			t.Fatalf("vectors differ: ilp=%v;%d pbsat=%v;%d (f=%s)",
				vIlp.Weights, vIlp.T, vPb.Weights, vPb.T, tt)
		}
		if !VerifyVector(tt, vIlp, don, doff) {
			t.Fatalf("vector fails verification (f=%s)", tt)
		}
	})
}
