package resyn

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"tels/internal/core"
	"tels/internal/network"
	"tels/internal/truth"
)

// A hardened replacement is represented as a canonical threshold-network
// fragment: primary inputs r0..r{k-1} (one per support position of the
// gate's reduced function), a single primary output gate named repOutput,
// and — when the vector re-derivation fell back to re-decomposition —
// internal part gates. Canonical naming makes the fragment independent of
// where the gate sits in its network, so two gates computing the same
// function at the same margin share one memo entry, and the service can
// cache fragments content-addressed across jobs.
const repOutput = "f"

func repInput(i int) string { return fmt.Sprintf("r%d", i) }

// Memo caches hardened replacements. Keys are content digests of
// (canonical function, margin, synthesis knobs); values are the
// replacement fragment in .tln text form. Implementations must be safe
// for the caller's concurrency model (the loop itself is sequential).
type Memo interface {
	Get(key string) (string, bool)
	Put(key, tln string)
}

// MapMemo is the trivial in-process Memo.
type MapMemo map[string]string

// Get implements Memo.
func (m MapMemo) Get(key string) (string, bool) { v, ok := m[key]; return v, ok }

// Put implements Memo.
func (m MapMemo) Put(key, tln string) { m[key] = tln }

// gateTruth enumerates the gate's Boolean function over its inputs
// (bit i of the minterm is input i).
func gateTruth(g *core.Gate) *truth.Table {
	tt := truth.New(len(g.Inputs))
	for m := 0; m < tt.Size(); m++ {
		sum := 0
		for i, w := range g.Weights {
			if m>>uint(i)&1 == 1 {
				sum += w
			}
		}
		tt.Set(m, sum >= g.T)
	}
	return tt
}

// memoKey is the content address of one (function, δon) synthesis under
// the loop's synthesis knobs.
func memoKey(tt *truth.Table, don int, o core.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "resyn/v1\nn=%d\ndon=%d\ndoff=%d\nmaxw=%d\nfanin=%d\nexact=%t\nmaxilp=%d\nseed=%d\nbits=",
		tt.N(), don, o.DeltaOff, o.MaxWeight, o.Fanin, o.ExactILP, o.MaxILPNodes, o.Seed)
	b := make([]byte, tt.Size())
	for m := 0; m < tt.Size(); m++ {
		if tt.Get(m) {
			b[m] = 1
		}
	}
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// replacement is one hardened realization of a gate's reduced function.
type replacement struct {
	frag *core.Network // canonical fragment (inputs r0.., output repOutput)
	// keptInputs maps fragment input position to the original gate input
	// index (the reduced support).
	keptInputs []int
	decomposed bool // true when re-decomposition was needed
	cacheHit   bool // served from the memo
}

// deriveReplacement re-derives the gate's weight–threshold vector at the
// elevated margin don, falling back to re-decomposing the gate's function
// through core.Synthesize (driven by the per-node δon override path) when
// no single-gate vector exists at that margin under the weight bound.
func deriveReplacement(g *core.Gate, don int, o core.Options, memo Memo) (*replacement, error) {
	if len(g.Inputs) > truth.MaxVars {
		return nil, fmt.Errorf("resyn: gate %s fanin %d exceeds the %d-variable engine limit",
			g.Name, len(g.Inputs), truth.MaxVars)
	}
	tt := gateTruth(g)
	sup := tt.Support()
	if len(sup) < tt.N() {
		tt = tt.Project(sup)
	}
	r := &replacement{keptInputs: sup}

	key := memoKey(tt, don, o)
	if memo != nil {
		if text, ok := memo.Get(key); ok {
			frag, err := core.ParseTLNString(text)
			if err != nil {
				return nil, fmt.Errorf("resyn: corrupt memo entry: %w", err)
			}
			r.frag = frag
			r.decomposed = frag.GateCount() > 1
			r.cacheHit = true
			return r, nil
		}
	}

	frag, err := synthesizeFragment(tt, don, o)
	if err != nil {
		return nil, err
	}
	r.frag = frag
	r.decomposed = frag.GateCount() > 1
	if memo != nil {
		memo.Put(key, frag.String())
	}
	return r, nil
}

// synthesizeFragment builds the canonical fragment for tt at margin don:
// a single gate when the ILP finds a vector, the re-decomposed cone
// otherwise.
func synthesizeFragment(tt *truth.Table, don int, o core.Options) (*core.Network, error) {
	frag := core.NewNetwork("resyn")
	for i := 0; i < tt.N(); i++ {
		frag.AddInput(repInput(i))
	}

	if isConst, v := tt.IsConst(); isConst {
		t := o.DeltaOff
		if t < 1 {
			t = 1
		}
		if v {
			t = -don
		}
		if err := frag.AddGate(&core.Gate{Name: repOutput, T: t}); err != nil {
			return nil, err
		}
		frag.MarkOutput(repOutput)
		return frag, nil
	}

	chk := o.Checker()
	if vec, ok := chk.Check(tt, don, o.DeltaOff, o.MaxWeight); ok {
		inputs := make([]string, tt.N())
		for i := range inputs {
			inputs[i] = repInput(i)
		}
		if err := frag.AddGate(&core.Gate{Name: repOutput, Inputs: inputs, Weights: vec.Weights, T: vec.T}); err != nil {
			return nil, err
		}
		frag.MarkOutput(repOutput)
		return frag, nil
	}

	// No vector at this margin (weight bound or ILP budget): re-decompose
	// the cone through the synthesizer, raising only this node's margin
	// via the per-node override so every emitted part gate carries don.
	src := network.New("resyn")
	fanins := make([]*network.Node, tt.N())
	for i := range fanins {
		fanins[i] = src.AddInput(repInput(i))
	}
	node := src.AddNode(repOutput, fanins, tt.MinimalSOP())
	src.MarkOutput(node)

	so := o
	so.DeltaOnOverrides = map[string]int{repOutput: don}
	sub, _, err := core.Synthesize(src, so)
	if err != nil {
		return nil, fmt.Errorf("resyn: re-decomposition at δon=%d: %w", don, err)
	}
	return sub, nil
}

// splice returns a new network with the named gate replaced by the
// fragment: the fragment's output takes the gate's name, its inputs map
// to the gate's (reduced) fanin signals, and its internal gates get fresh
// non-colliding names. The second return lists the names of every gate
// the replacement contributed, output first.
func splice(tn *core.Network, gateName string, r *replacement) (*core.Network, []string, error) {
	target := tn.Gate(gateName)
	if target == nil {
		return nil, nil, fmt.Errorf("resyn: no gate %s to splice", gateName)
	}

	rename := make(map[string]string, len(r.frag.Inputs)+r.frag.GateCount())
	for i, in := range r.frag.Inputs {
		rename[in] = target.Inputs[r.keptInputs[i]]
	}
	rename[repOutput] = gateName

	out := core.NewNetwork(tn.Name)
	for _, in := range tn.Inputs {
		out.AddInput(in)
	}
	taken := func(name string) bool {
		if tn.Gate(name) != nil || out.Gate(name) != nil {
			return true
		}
		for _, in := range tn.Inputs {
			if in == name {
				return true
			}
		}
		return false
	}
	serial := 0
	fresh := func(base string) string {
		for {
			serial++
			name := fmt.Sprintf("%s.h%d", base, serial)
			if !taken(name) {
				return name
			}
		}
	}

	fragOrder, err := r.frag.TopoGates()
	if err != nil {
		return nil, nil, fmt.Errorf("resyn: malformed fragment: %w", err)
	}
	added := []string{gateName}
	addFrag := func() error {
		// Name internal gates first so forward references inside the
		// fragment resolve regardless of order.
		for _, fg := range fragOrder {
			if fg.Name != repOutput {
				rename[fg.Name] = fresh(gateName)
				added = append(added, rename[fg.Name])
			}
		}
		for _, fg := range fragOrder {
			inputs := make([]string, len(fg.Inputs))
			for i, in := range fg.Inputs {
				inputs[i] = rename[in]
			}
			g := &core.Gate{
				Name:    rename[fg.Name],
				Inputs:  inputs,
				Weights: append([]int(nil), fg.Weights...),
				T:       fg.T,
			}
			if err := out.AddGate(g); err != nil {
				return err
			}
		}
		return nil
	}

	for _, g := range tn.Gates {
		if g.Name == gateName {
			if err := addFrag(); err != nil {
				return nil, nil, err
			}
			continue
		}
		if err := out.AddGate(g); err != nil {
			return nil, nil, err
		}
	}
	for _, o := range tn.Outputs {
		out.MarkOutput(o)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("resyn: spliced network invalid: %w", err)
	}
	return out, added, nil
}
