package resyn

import (
	"context"
	"encoding/json"
	"testing"

	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/ilp"
	"tels/internal/logic"
	"tels/internal/network"
)

// aoi builds f = (a AND b) OR (c AND d) as a Boolean network plus its
// δon=0 threshold implementation, a three-gate circuit with enough
// structure for blame to move between gates as the loop hardens them.
func aoi(t *testing.T) (*network.Network, *core.Network) {
	t.Helper()
	nw := network.New("aoi")
	a, b := nw.AddInput("a"), nw.AddInput("b")
	c, d := nw.AddInput("c"), nw.AddInput("d")
	g1 := nw.AddNode("g1", []*network.Node{a, b}, logic.MustCover("11"))
	g2 := nw.AddNode("g2", []*network.Node{c, d}, logic.MustCover("11"))
	f := nw.AddNode("f", []*network.Node{g1, g2}, logic.MustCover("1-", "-1"))
	nw.MarkOutput(f)

	tn, _, err := core.Synthesize(nw, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return nw, tn
}

func defaultCfg() Config {
	return Config{
		Model: fsim.WeightVariation{V: 0.9},
		Yield: fsim.YieldConfig{MaxTrials: 400, MinTrials: 64, Seed: 7},
		Synth: core.DefaultOptions(),
		TopK:  2,
	}
}

// TestDeriveReplacementSingleGate: an AND gate re-derived at a higher
// margin stays a single gate (the scaling property) and the new vector
// actually carries that margin.
func TestDeriveReplacementSingleGate(t *testing.T) {
	g := &core.Gate{Name: "g", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}
	o := core.DefaultOptions()
	r, err := deriveReplacement(g, 3, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.decomposed || r.frag.GateCount() != 1 {
		t.Fatalf("expected a single-gate replacement, got %d gates (decomposed=%v)",
			r.frag.GateCount(), r.decomposed)
	}
	ng := r.frag.Gate(repOutput)
	tt := gateTruth(g)
	if !core.VerifyVector(tt, core.WeightVector{Weights: ng.Weights, T: ng.T}, 3, o.DeltaOff) {
		t.Fatalf("replacement vector w=%v T=%d does not carry δon=3", ng.Weights, ng.T)
	}
}

// TestDeriveReplacementDecomposeFallback: under a weight cap, f = a ∨ bc
// admits no single-gate vector at δon=1, so the loop must re-decompose —
// and every gate of the decomposed fragment must itself carry the raised
// margin, proving the per-node override reached the synthesizer.
func TestDeriveReplacementDecomposeFallback(t *testing.T) {
	// w = (2,1,1), T = 2 realises a ∨ bc at δon=0, δoff=1.
	g := &core.Gate{Name: "g", Inputs: []string{"a", "b", "c"}, Weights: []int{2, 1, 1}, T: 2}
	o := core.DefaultOptions()
	o.MaxWeight = 2

	tt := gateTruth(g)
	solver := &ilp.Solver{}
	if _, ok := core.CheckThreshold(tt, 1, o.DeltaOff, solver); !ok {
		t.Fatal("test premise broken: function should be threshold without the cap")
	}
	if _, ok := core.CheckThresholdBounded(tt, 1, o.DeltaOff, o.MaxWeight, solver); ok {
		t.Fatal("test premise broken: δon=1 should be infeasible under max weight 2")
	}

	r, err := deriveReplacement(g, 1, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.decomposed || r.frag.GateCount() < 2 {
		t.Fatalf("expected a decomposed replacement, got %d gates", r.frag.GateCount())
	}
	// Functional equivalence over all minterms.
	for m := 0; m < tt.Size(); m++ {
		in := map[string]bool{}
		for i := 0; i < tt.N(); i++ {
			in[repInput(i)] = m>>uint(i)&1 == 1
		}
		out, err := r.frag.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tt.Get(m) {
			t.Fatalf("fragment differs from source at minterm %d", m)
		}
	}
	// Margin check gate by gate: the override must have raised every
	// part gate, not just the root.
	for _, fg := range r.frag.Gates {
		ftt := gateTruth(fg)
		if !core.VerifyVector(ftt, core.WeightVector{Weights: fg.Weights, T: fg.T}, 1, o.DeltaOff) {
			t.Fatalf("fragment gate %s (w=%v T=%d) lacks δon=1", fg.Name, fg.Weights, fg.T)
		}
	}
}

// TestSplicePreservesFunction: hardening one gate must not change the
// network's Boolean function.
func TestSplicePreservesFunction(t *testing.T) {
	nw, tn := aoi(t)
	name := tn.Gates[0].Name
	r, err := deriveReplacement(tn.Gate(name), 2, core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	next, added, err := splice(tn, name, r)
	if err != nil {
		t.Fatal(err)
	}
	if added[0] != name {
		t.Fatalf("splice should keep the gate name, got %v", added)
	}
	sess, err := fsim.NewYieldSession(nw, tn, fsim.YieldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.VerifyClean(next); err != nil {
		t.Fatalf("spliced network is not functionally clean: %v", err)
	}
}

// TestRunHardensToTarget: under weight variation the loop must raise
// yield monotonically enough to hit a reachable target, spending area to
// do it, and the hardened network must stay functionally clean.
func TestRunHardensToTarget(t *testing.T) {
	nw, tn := aoi(t)
	cfg := defaultCfg()
	cfg.TargetYield = 0.95
	cfg.MaxIters = 12

	rep, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stop != StopTargetYield {
		t.Fatalf("expected target-yield stop, got %q (final yield %.3f)", rep.Stop, rep.FinalYield)
	}
	if rep.FinalYield < cfg.TargetYield || rep.FinalYield < rep.InitialYield {
		t.Fatalf("yield did not improve to target: %.3f → %.3f", rep.InitialYield, rep.FinalYield)
	}
	if rep.FinalArea <= rep.InitialArea {
		t.Fatalf("hardening should cost area: %d → %d", rep.InitialArea, rep.FinalArea)
	}
	if rep.HardenedGates == 0 || len(rep.Iterations) < 2 {
		t.Fatalf("loop did no work: %+v", rep)
	}
	sess, err := fsim.NewYieldSession(nw, tn, cfg.Yield)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.VerifyClean(rep.Network); err != nil {
		t.Fatalf("hardened network broke functionality: %v", err)
	}
	// The loop must not have touched the input network.
	if tn.Area() != rep.InitialArea {
		t.Fatalf("input network mutated: area %d vs initial %d", tn.Area(), rep.InitialArea)
	}
}

// TestRunDeterministic: identical configs give byte-identical reports.
func TestRunDeterministic(t *testing.T) {
	nw, tn := aoi(t)
	cfg := defaultCfg()
	cfg.TargetYield = 0.95
	a, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("non-deterministic run:\n%s\nvs\n%s", ja, jb)
	}
	if a.Network.String() != b.Network.String() {
		t.Fatal("non-deterministic hardened network")
	}
}

// TestRunCallbackStreams: OnIteration fires once per recorded iteration,
// in order.
func TestRunCallbackStreams(t *testing.T) {
	nw, tn := aoi(t)
	cfg := defaultCfg()
	cfg.TargetYield = 0.95
	var seen []int
	cfg.OnIteration = func(it Iteration) { seen = append(seen, it.Iter) }
	rep, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(rep.Iterations) {
		t.Fatalf("callback fired %d times for %d iterations", len(seen), len(rep.Iterations))
	}
	for i, iter := range seen {
		if iter != i {
			t.Fatalf("out-of-order callback: %v", seen)
		}
	}
}

// TestRunMemoReuse: a second run over the same circuit with a shared
// memo re-derives nothing.
func TestRunMemoReuse(t *testing.T) {
	nw, tn := aoi(t)
	cfg := defaultCfg()
	cfg.TargetYield = 0.95
	cfg.Memo = MapMemo{}

	cold, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.HardenedGates {
		t.Fatalf("warm run should be fully memoised: %d hits for %d hardenings",
			warm.CacheHits, warm.HardenedGates)
	}
	if cold.FinalYield != warm.FinalYield || cold.FinalArea != warm.FinalArea {
		t.Fatalf("memo changed the result: %.3f/%d vs %.3f/%d",
			cold.FinalYield, cold.FinalArea, warm.FinalYield, warm.FinalArea)
	}
}

// TestRunAreaBudget: a budget at the initial area blocks every hardening
// and stops the loop immediately with the right reason.
func TestRunAreaBudget(t *testing.T) {
	nw, tn := aoi(t)
	cfg := defaultCfg()
	cfg.TargetYield = 0.9999
	cfg.AreaBudget = tn.Area()
	rep, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stop != StopAreaBudget {
		t.Fatalf("expected area-budget stop, got %q", rep.Stop)
	}
	if rep.FinalArea != rep.InitialArea || rep.HardenedGates != 0 {
		t.Fatalf("budget was not respected: %+v", rep)
	}
}

// TestRunStuckAtConverges: margins cannot fix stuck-at defects, so the
// loop must terminate via its caps rather than spin.
func TestRunStuckAtConverges(t *testing.T) {
	nw, tn := aoi(t)
	cfg := defaultCfg()
	cfg.Model = fsim.StuckAt{P: 0.05}
	cfg.TargetYield = 0.9999
	cfg.MaxIters = 3
	cfg.MaxDeltaOn = 2
	rep, err := Run(context.Background(), nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	switch rep.Stop {
	case StopMaxIters, StopConverged:
	default:
		t.Fatalf("expected cap/convergence stop under stuck-at, got %q", rep.Stop)
	}
}

// TestRunCancellation: a cancelled context aborts between iterations.
func TestRunCancellation(t *testing.T) {
	nw, tn := aoi(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, nw, tn, defaultCfg()); err == nil {
		t.Fatal("expected a context error")
	}
}
