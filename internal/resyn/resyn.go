// Package resyn implements defect-aware selective re-synthesis: instead
// of hardening a whole network by re-running synthesis at a higher global
// δon (the paper's Fig. 12 sweep), the loop measures yield under a defect
// model, takes the first-flip blame ranking from the fault simulator, and
// re-derives weight–threshold vectors for only the top-k blamed gates at
// an elevated per-gate δon — falling back to re-decomposing a gate's cone
// through the synthesizer when no single-gate vector exists at the new
// margin. Iteration stops on a target yield, an area budget, convergence
// (no blamed gate can be improved further), or an iteration cap. The
// result is the paper's robustness at a fraction of the global-margin
// area cost, because margin is spent only where defects actually land.
package resyn

import (
	"context"
	"errors"
	"fmt"

	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/netcore"
	"tels/internal/network"
)

// Stop reasons reported in Report.Stop.
const (
	StopTargetYield = "target-yield"
	StopConverged   = "converged"
	StopAreaBudget  = "area-budget"
	StopMaxIters    = "max-iterations"
)

// Config parameterises one re-synthesis run.
type Config struct {
	// Model is the defect model driving yield estimation (required).
	Model fsim.DefectModel
	// Yield configures each estimate. Iteration i uses Yield.Seed+i so
	// successive rankings see fresh defect samples (the loop would
	// otherwise overfit the gates to one sample) while the whole run
	// stays deterministic.
	Yield fsim.YieldConfig
	// Synth carries the synthesis knobs (δoff, weight bound, fanin, ILP
	// budget) used when re-deriving vectors. Synth.DeltaOn is the base
	// margin assumed for gates the loop has not touched; per-gate
	// starting margins honour Synth.DeltaOnOverrides.
	Synth core.Options

	// TopK bounds the blamed gates hardened per iteration (default 3).
	TopK int
	// DeltaStep is the per-iteration δon increment for a blamed gate
	// (default 1).
	DeltaStep int
	// MaxDeltaOn caps any single gate's margin (default Synth.DeltaOn+8).
	MaxDeltaOn int
	// MaxIters caps hardening iterations; the loop always ends on a
	// measurement (default 10).
	MaxIters int
	// TargetYield stops the loop once an estimate reaches it (0 = no
	// target: run until convergence or the iteration cap).
	TargetYield float64
	// AreaBudget rejects any hardening that would push total area past
	// it (0 = unbounded).
	AreaBudget int

	// Memo caches (function, δon) → replacement fragment across
	// iterations; nil runs uncached. The service layer plugs the shared
	// content-addressed result cache in here.
	Memo Memo
	// OnIteration, when set, observes each completed iteration in order
	// (measurement plus the hardening that followed it).
	OnIteration func(Iteration)
}

func (c *Config) withDefaults() {
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.DeltaStep <= 0 {
		c.DeltaStep = 1
	}
	if c.MaxDeltaOn <= 0 {
		c.MaxDeltaOn = c.Synth.DeltaOn + 8
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 10
	}
}

// GateChange records one gate hardened during an iteration.
type GateChange struct {
	// Gate is the hardened gate's name (preserved across the splice).
	Gate string `json:"gate"`
	// DeltaOn is the gate's margin after hardening.
	DeltaOn int `json:"delta_on"`
	// Decomposed reports that no single-gate vector existed at the new
	// margin and the cone was re-decomposed.
	Decomposed bool `json:"decomposed,omitempty"`
	// AddedGates counts extra gates the decomposition introduced.
	AddedGates int `json:"added_gates,omitempty"`
	// AreaDelta is the area change from this replacement.
	AreaDelta int `json:"area_delta"`
	// CacheHit reports the replacement came from the memo.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Iteration is one measure-then-harden step.
type Iteration struct {
	Iter        int     `json:"iter"`
	Trials      int     `json:"trials"`
	Failures    int     `json:"failures"`
	FailureRate float64 `json:"failure_rate"`
	Yield       float64 `json:"yield"`
	Lo          float64 `json:"ci_lo"`
	Hi          float64 `json:"ci_hi"`
	Gates       int     `json:"gates"`
	Area        int     `json:"area"`
	// Critical is the head of the blame ranking this iteration acted on.
	Critical []fsim.GateImpact `json:"critical,omitempty"`
	// Hardened lists the gates changed after this measurement; empty on
	// the final iteration.
	Hardened []GateChange `json:"hardened,omitempty"`
}

// Report is the outcome of a re-synthesis run.
type Report struct {
	Model        string      `json:"model"`
	Iterations   []Iteration `json:"iterations"`
	Stop         string      `json:"stop"`
	InitialYield float64     `json:"initial_yield"`
	FinalYield   float64     `json:"final_yield"`
	InitialArea  int         `json:"initial_area"`
	FinalArea    int         `json:"final_area"`
	InitialGates int         `json:"initial_gates"`
	FinalGates   int         `json:"final_gates"`
	// HardenedGates counts gate-hardening events across all iterations.
	HardenedGates int `json:"hardened_gates"`
	// CacheHits counts replacements served from the memo.
	CacheHits int `json:"cache_hits"`
	// Network is the hardened network (not serialised; render via its
	// .tln String form).
	Network *core.Network `json:"-"`
}

// RunCore is Run for callers holding the golden Boolean network in the
// arena-backed representation; the conversion happens once at this
// boundary and the loop below is unchanged.
func RunCore(ctx context.Context, golden *netcore.Network, tn *core.Network, cfg Config) (*Report, error) {
	if golden == nil {
		return nil, errors.New("resyn: nil network")
	}
	return Run(ctx, golden.ToNetwork(), tn, cfg)
}

// Run executes the selective re-synthesis loop on tn against the golden
// Boolean network. tn is not mutated; the hardened result is
// Report.Network.
func Run(ctx context.Context, golden *network.Network, tn *core.Network, cfg Config) (*Report, error) {
	if golden == nil || tn == nil {
		return nil, errors.New("resyn: nil network")
	}
	if cfg.Model == nil {
		return nil, errors.New("resyn: nil defect model")
	}
	if err := cfg.Synth.Validate(); err != nil {
		return nil, err
	}
	cfg.withDefaults()
	if cfg.MaxDeltaOn < cfg.Synth.DeltaOn {
		return nil, fmt.Errorf("resyn: max δon %d below base δon %d", cfg.MaxDeltaOn, cfg.Synth.DeltaOn)
	}

	sess, err := fsim.NewYieldSession(golden, tn, cfg.Yield)
	if err != nil {
		return nil, err
	}

	// margins tracks every gate's current δon; exhausted marks gates
	// that cannot be hardened further (at the cap, over the engine's
	// fanin limit, or blocked by the area budget at the cap).
	margins := make(map[string]int, tn.GateCount())
	for _, g := range tn.Gates {
		margins[g.Name] = cfg.Synth.DeltaOnFor(g.Name)
	}
	exhausted := make(map[string]bool)

	rep := &Report{Model: cfg.Model.Name(), Network: tn}
	cur := tn
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ycfg := cfg.Yield
		ycfg.Seed += int64(iter)
		yr, err := sess.EstimateFor(cur, cfg.Model, ycfg)
		if err != nil {
			return nil, err
		}
		it := Iteration{
			Iter:        iter,
			Trials:      yr.Trials,
			Failures:    yr.Failures,
			FailureRate: yr.FailureRate,
			Yield:       yr.Yield,
			Lo:          yr.Lo,
			Hi:          yr.Hi,
			Gates:       cur.GateCount(),
			Area:        cur.Area(),
		}
		if n := len(yr.Critical); n > 0 {
			head := cfg.TopK + 2
			if head > n {
				head = n
			}
			it.Critical = append([]fsim.GateImpact(nil), yr.Critical[:head]...)
		}
		finish := func(stop string) *Report {
			rep.Iterations = append(rep.Iterations, it)
			if cfg.OnIteration != nil {
				cfg.OnIteration(it)
			}
			rep.Stop = stop
			rep.Network = cur
			first := rep.Iterations[0]
			last := rep.Iterations[len(rep.Iterations)-1]
			rep.InitialYield, rep.FinalYield = first.Yield, last.Yield
			rep.InitialArea, rep.FinalArea = first.Area, last.Area
			rep.InitialGates, rep.FinalGates = first.Gates, last.Gates
			return rep
		}

		if cfg.TargetYield > 0 && yr.Yield >= cfg.TargetYield {
			return finish(StopTargetYield), nil
		}
		if yr.Failures == 0 {
			// Nothing to blame: every sampled defect instance passed.
			return finish(StopConverged), nil
		}
		if iter >= cfg.MaxIters {
			return finish(StopMaxIters), nil
		}

		// Harden the top-k improvable blamed gates.
		budgetBlocked := false
		picked := 0
		for _, gi := range yr.Critical {
			if picked >= cfg.TopK {
				break
			}
			if exhausted[gi.Gate] || margins[gi.Gate] >= cfg.MaxDeltaOn {
				continue
			}
			g := cur.Gate(gi.Gate)
			if g == nil {
				continue
			}
			newDon := margins[gi.Gate] + cfg.DeltaStep
			if newDon > cfg.MaxDeltaOn {
				newDon = cfg.MaxDeltaOn
			}
			repl, err := deriveReplacement(g, newDon, cfg.Synth, cfg.Memo)
			if err != nil {
				// Unhardenable (e.g. fanin over the engine limit): skip
				// it for good rather than abort the run.
				exhausted[gi.Gate] = true
				continue
			}
			next, addedNames, err := splice(cur, gi.Gate, repl)
			if err != nil {
				return nil, err
			}
			change := GateChange{
				Gate:       gi.Gate,
				DeltaOn:    newDon,
				Decomposed: repl.decomposed,
				AddedGates: len(addedNames) - 1,
				AreaDelta:  next.Area() - cur.Area(),
				CacheHit:   repl.cacheHit,
			}
			if cfg.AreaBudget > 0 && next.Area() > cfg.AreaBudget {
				budgetBlocked = true
				continue
			}
			cur = next
			for _, name := range addedNames {
				margins[name] = newDon
			}
			it.Hardened = append(it.Hardened, change)
			rep.HardenedGates++
			if repl.cacheHit {
				rep.CacheHits++
			}
			picked++
		}

		if len(it.Hardened) == 0 {
			if budgetBlocked {
				return finish(StopAreaBudget), nil
			}
			return finish(StopConverged), nil
		}
		if err := sess.VerifyClean(cur); err != nil {
			return nil, fmt.Errorf("resyn: iteration %d broke functionality: %w", iter, err)
		}
		rep.Iterations = append(rep.Iterations, it)
		if cfg.OnIteration != nil {
			cfg.OnIteration(it)
		}
	}
}
