package expt

import (
	"strings"
	"testing"

	"tels/internal/core"
)

// smallSet keeps test runtime modest while covering distinct circuit
// families (mux, comparator, adder, parity, wires).
var smallSet = []string{"cm152a", "comp4", "adder4", "parity8", "tcon"}

func TestTableISmallSet(t *testing.T) {
	rows, err := TableI(smallSet, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(smallSet) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s not verified", r.Name)
		}
		if r.TELS.Gates == 0 || r.OneToOne.Gates == 0 {
			t.Errorf("%s has zero gates: %+v", r.Name, r)
		}
		if r.TELS.Area == 0 || r.OneToOne.Area == 0 {
			t.Errorf("%s has zero area: %+v", r.Name, r)
		}
	}
	// The headline claim: TELS reduces gate count on average.
	if red := GateReduction(rows); red <= 0 {
		t.Fatalf("average reduction %.2f, want > 0", red)
	}
	text := RenderTableI(rows)
	for _, name := range smallSet {
		if !strings.Contains(text, name) {
			t.Errorf("render missing %s:\n%s", name, text)
		}
	}
	if !strings.Contains(text, "reduction") {
		t.Errorf("render missing summary:\n%s", text)
	}
}

func TestRunFlowUnknownBenchmark(t *testing.T) {
	if _, err := RunFlow("nope", core.DefaultOptions()); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
}

func TestFig10SmallSweep(t *testing.T) {
	points, err := Fig10("comp4", []int{3, 4, 5}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// The paper's observation: relaxing ψ shrinks the one-to-one mapping
	// much more than TELS. Check one-to-one is non-increasing.
	for i := 1; i < len(points); i++ {
		if points[i].OneToOneGates > points[i-1].OneToOneGates {
			t.Errorf("one-to-one gates increased with fanin: %+v", points)
		}
	}
	text := RenderFig10("comp4", points)
	if !strings.Contains(text, "fanin") {
		t.Errorf("render: %s", text)
	}
}

func TestFig11SmallGrid(t *testing.T) {
	curves, err := Fig11([]string{"mux4", "rd53"}, []float64{0, 1.0}, []int{0, 2}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || len(curves[0].Rate) != 2 {
		t.Fatalf("shape wrong: %+v", curves)
	}
	// v=0 never fails.
	for _, c := range curves {
		if c.Rate[0] != 0 {
			t.Errorf("δon=%d: rate at v=0 is %.2f, want 0", c.DeltaOn, c.Rate[0])
		}
	}
	text := RenderFig11(curves)
	if !strings.Contains(text, "δon=0") || !strings.Contains(text, "δon=2") {
		t.Errorf("render: %s", text)
	}
}

func TestFig12SmallGrid(t *testing.T) {
	points, err := Fig12([]string{"mux4", "rd53"}, 0.8, []int{0, 1, 2}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Area must not shrink as δon grows (Fig. 12's tradeoff).
	for i := 1; i < len(points); i++ {
		if points[i].TotalArea < points[i-1].TotalArea {
			t.Errorf("area decreased with δon: %+v", points)
		}
	}
	if points[0].RelativeArea != 1.0 {
		t.Errorf("base relative area = %v", points[0].RelativeArea)
	}
	text := RenderFig12(0.8, points)
	if !strings.Contains(text, "0.8") {
		t.Errorf("render: %s", text)
	}
}

func TestTiming(t *testing.T) {
	rows, err := Timing([]string{"mux4"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].SynthFraction < 0 || rows[0].SynthFraction > 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if !strings.Contains(RenderTiming(rows), "mux4") {
		t.Error("render missing benchmark")
	}
}

func TestDefectSetKnown(t *testing.T) {
	for _, name := range DefectSet() {
		if _, err := RunFlow(name, core.DefaultOptions()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation([]string{"cm152a", "adder4"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// All variants are verified equivalent inside Ablation; the gate
		// counts are heuristic outcomes (Theorem-2 occasionally loses to
		// the k-way fallback — see EXPERIMENTS.md), so only require the
		// variants to stay in the same ballpark.
		for _, s := range []core.Stats{r.NoCollapse, r.NoTheorem2, r.Neither} {
			if s.Gates > 2*r.Full.Gates || r.Full.Gates > 2*s.Gates {
				t.Errorf("%s: variant gate counts diverge: %+v", r.Name, r)
			}
		}
	}
	text := RenderAblation(rows)
	if !strings.Contains(text, "no-collapse") {
		t.Errorf("render: %s", text)
	}
}

func TestHeuristics(t *testing.T) {
	rows, err := Heuristics([]string{"cm152a", "comp4"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, s := range []core.Stats{r.Frequency, r.Balanced, r.Random} {
			if s.Gates == 0 {
				t.Errorf("%s: missing variant result: %+v", r.Name, r)
			}
		}
	}
	if !strings.Contains(RenderHeuristics(rows), "frequency") {
		t.Error("render missing strategy name")
	}
}

func TestWeightSweep(t *testing.T) {
	points, err := WeightSweep("comp4", []int{0, 2, 1}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Tighter bounds can only need at least as many gates.
	if points[2].Gates < points[0].Gates {
		t.Fatalf("unit-weight synthesis used fewer gates than unbounded: %+v", points)
	}
	if !strings.Contains(RenderWeightSweep("comp4", points), "∞") {
		t.Error("render missing the unbounded row")
	}
}

func TestSeedSweep(t *testing.T) {
	r, err := SeedSweep("cm152a", 5, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.MinG > r.MedG || r.MedG > r.MaxG || r.MinG == 0 {
		t.Fatalf("inconsistent stats: %+v", r)
	}
	if !strings.Contains(RenderSeedSweep([]SeedStats{r}), "cm152a") {
		t.Error("render missing benchmark")
	}
}

func TestCSVWriters(t *testing.T) {
	var sb strings.Builder
	rows := []TableIRow{{Name: "x", OneToOne: core.Stats{Gates: 3, Levels: 2, Area: 9},
		TELS: core.Stats{Gates: 2, Levels: 1, Area: 5}, Verified: true}}
	if err := WriteTableICSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x,3,2,9,2,1,5,true") {
		t.Fatalf("table1 csv wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteFig10CSV(&sb, []Fig10Point{{Fanin: 3, OneToOneGates: 10, TELSGates: 7}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3,10,7") {
		t.Fatalf("fig10 csv wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteFig11CSV(&sb, []Fig11Curve{{DeltaOn: 1, V: []float64{0.5}, Rate: []float64{0.25}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.50,1,0.2500") {
		t.Fatalf("fig11 csv wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteFig12CSV(&sb, 0.8, []Fig12Point{{DeltaOn: 2, FailureRate: 0.5, TotalArea: 100, RelativeArea: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2,0.80,0.5000,100,1.5000") {
		t.Fatalf("fig12 csv wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteWeightSweepCSV(&sb, []WeightPoint{{MaxWeight: 0, Gates: 5, Levels: 2, Area: 11}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0,5,2,11") {
		t.Fatalf("weights csv wrong:\n%s", sb.String())
	}
}
