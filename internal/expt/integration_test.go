package expt

import (
	"testing"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

// TestWholeSuiteSynthesizes runs TELS over every recreated benchmark and
// proves (or, for cones beyond the BDD budget, simulates) equivalence —
// the repo-wide integration test mirroring the paper's "we ran all the
// benchmarks in the MCNC benchmark suite through TELS".
func TestWholeSuiteSynthesizes(t *testing.T) {
	for _, bm := range mcnc.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			if testing.Short() && bm.Name == "i10" {
				t.Skip("large benchmark skipped in -short mode")
			}
			src := bm.Build()
			alg := opt.Algebraic(src)
			tn, _, err := core.Synthesize(alg, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Prove(src, tn, 1)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d nodes -> %d LTGs, area %d (%s)",
				bm.Name, src.GateCount(), tn.GateCount(), tn.Area(), res)
			if fanin := tn.MaxFanin(); fanin > 3 {
				t.Errorf("fanin restriction violated: %d", fanin)
			}
		})
	}
}

// TestWholeSuiteOneToOne does the same for the baseline mapper.
func TestWholeSuiteOneToOne(t *testing.T) {
	for _, bm := range mcnc.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			if testing.Short() && bm.Name == "i10" {
				t.Skip("large benchmark skipped in -short mode")
			}
			src := bm.Build()
			boolNet := opt.Boolean(src)
			tn, err := core.OneToOne(boolNet, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Prove(src, tn, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}
