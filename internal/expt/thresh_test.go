package expt

import (
	"strings"
	"testing"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
)

// TestSolverModesSynthesizeIdentically pins the portfolio's central
// guarantee at the whole-flow level: synthesizing any MCNC benchmark with
// the threshold checks decided by the ILP alone, the pbsat engine alone,
// or the deployed race produces byte-identical networks. The solver knob
// is deployment configuration — it may change how fast an answer arrives,
// never which answer.
func TestSolverModesSynthesizeIdentically(t *testing.T) {
	modes := []core.SolverMode{core.SolverILP, core.SolverPbsat, core.SolverPortfolio}
	for _, bm := range mcnc.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			if testing.Short() && bm.Name == "i10" {
				t.Skip("large benchmark skipped in -short mode")
			}
			alg := opt.Algebraic(bm.Build())
			var refTLN string
			var refArea int
			for mi, m := range modes {
				o := core.DefaultOptions()
				o.Solver = m
				tn, _, err := core.Synthesize(alg, o)
				if err != nil {
					t.Fatalf("solver %s: %v", m, err)
				}
				var sb strings.Builder
				if err := core.WriteTLN(&sb, tn); err != nil {
					t.Fatalf("solver %s: %v", m, err)
				}
				if mi == 0 {
					refTLN, refArea = sb.String(), tn.Area()
					continue
				}
				if tn.Area() != refArea || sb.String() != refTLN {
					t.Fatalf("solver %s network differs from %s (area %d vs %d)",
						m, modes[0], tn.Area(), refArea)
				}
			}
		})
	}
}

// TestThreshBenchQuick exercises the benchmark harness end to end on one
// small benchmark, including its internal cross-mode identity gate.
func TestThreshBenchQuick(t *testing.T) {
	rows, err := ThreshBench([]string{"comp4"}, 6, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Benchmark != "comp4" || r.Nodes == 0 || r.Checks != r.Nodes*len(threshConfigs) {
		t.Fatalf("malformed row: %+v", r)
	}
	if r.ILPMS <= 0 || r.PbsatMS <= 0 || r.PortMS <= 0 {
		t.Fatalf("missing timings: %+v", r)
	}
	var sb strings.Builder
	if err := WriteThreshBenchCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "comp4") {
		t.Fatalf("CSV missing row:\n%s", sb.String())
	}
	if !strings.Contains(RenderThreshBench(rows), "comp4") {
		t.Fatal("rendered table missing row")
	}
}

// TestHarvestThreshNodes checks the harvest filters: width window
// honoured, widest first, limit applied, repeats kept.
func TestHarvestThreshNodes(t *testing.T) {
	insts, err := HarvestThreshNodes("i10", 6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) < 2 {
		t.Fatalf("harvested %d instances, want several", len(insts))
	}
	for i, inst := range insts {
		if n := inst.TT.N(); n < 6 || n > 10 {
			t.Fatalf("instance %d has %d vars, outside [6,10]", i, n)
		}
		if i > 0 && inst.TT.N() > insts[i-1].TT.N() {
			t.Fatal("instances not sorted widest first")
		}
	}
	capped, err := HarvestThreshNodes("i10", 6, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Fatalf("limit 3 returned %d instances", len(capped))
	}
}
