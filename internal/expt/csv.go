package expt

import (
	"encoding/csv"
	"io"
	"strconv"
)

// The CSV emitters below serialize each experiment as a plottable table,
// one row per data point, so the paper's figures can be regenerated with
// any plotting tool (telsbench -csv <dir> writes one file per experiment).

// WriteTableICSV emits the Table I rows.
func WriteTableICSV(w io.Writer, rows []TableIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "one2one_gates", "one2one_levels", "one2one_area",
		"tels_gates", "tels_levels", "tels_area", "verified",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name,
			strconv.Itoa(r.OneToOne.Gates), strconv.Itoa(r.OneToOne.Levels), strconv.Itoa(r.OneToOne.Area),
			strconv.Itoa(r.TELS.Gates), strconv.Itoa(r.TELS.Levels), strconv.Itoa(r.TELS.Area),
			strconv.FormatBool(r.Verified),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV emits the fanin-restriction sweep.
func WriteFig10CSV(w io.Writer, points []Fig10Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"fanin", "one2one_gates", "tels_gates"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{strconv.Itoa(p.Fanin), strconv.Itoa(p.OneToOneGates), strconv.Itoa(p.TELSGates)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig11CSV emits the failure-rate curves, one row per (v, δon).
func WriteFig11CSV(w io.Writer, curves []Fig11Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"v", "delta_on", "failure_rate"}); err != nil {
		return err
	}
	for _, c := range curves {
		for i := range c.V {
			rec := []string{
				strconv.FormatFloat(c.V[i], 'f', 2, 64),
				strconv.Itoa(c.DeltaOn),
				strconv.FormatFloat(c.Rate[i], 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig12CSV emits the failure-rate/area tradeoff.
func WriteFig12CSV(w io.Writer, v float64, points []Fig12Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"delta_on", "v", "failure_rate", "area", "relative_area"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.DeltaOn),
			strconv.FormatFloat(v, 'f', 2, 64),
			strconv.FormatFloat(p.FailureRate, 'f', 4, 64),
			strconv.Itoa(p.TotalArea),
			strconv.FormatFloat(p.RelativeArea, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWeightSweepCSV emits the weight-bound sweep (0 = unbounded).
func WriteWeightSweepCSV(w io.Writer, points []WeightPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"max_weight", "gates", "levels", "area"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.MaxWeight), strconv.Itoa(p.Gates),
			strconv.Itoa(p.Levels), strconv.Itoa(p.Area),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
