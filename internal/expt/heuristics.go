package expt

import (
	"fmt"
	"strings"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

// HeuristicRow compares the splitting strategies (§VII conjectures better
// partitioning heuristics may exist) on one benchmark.
type HeuristicRow struct {
	Name      string
	Frequency core.Stats // the paper's heuristic
	Balanced  core.Stats
	Random    core.Stats
}

// Heuristics synthesizes each benchmark under every splitting strategy,
// verifying all results.
func Heuristics(names []string, base core.Options) ([]HeuristicRow, error) {
	rows := make([]HeuristicRow, 0, len(names))
	for _, name := range names {
		bm, ok := mcnc.Get(name)
		if !ok {
			return nil, fmt.Errorf("expt: unknown benchmark %q", name)
		}
		src := bm.Build()
		alg := opt.Algebraic(src)
		row := HeuristicRow{Name: name}
		for _, strat := range []core.SplitStrategy{core.SplitFrequency, core.SplitBalanced, core.SplitRandom} {
			o := base
			o.Split = strat
			tn, _, err := core.Synthesize(alg, o)
			if err != nil {
				return nil, fmt.Errorf("expt: %s (%s split): %w", name, strat, err)
			}
			if _, err := sim.Prove(src, tn, 1); err != nil {
				return nil, fmt.Errorf("expt: %s (%s split) failed verification: %w", name, strat, err)
			}
			switch strat {
			case core.SplitFrequency:
				row.Frequency = tn.Stats()
			case core.SplitBalanced:
				row.Balanced = tn.Stats()
			case core.SplitRandom:
				row.Random = tn.Stats()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderHeuristics formats the splitting-strategy comparison.
func RenderHeuristics(rows []HeuristicRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Splitting heuristics — TELS gates (levels) per strategy")
	fmt.Fprintf(&b, "%-10s | %16s | %16s | %16s\n",
		"Benchmark", "frequency (§V-C)", "balanced", "random")
	fmt.Fprintln(&b, strings.Repeat("-", 68))
	cell := func(s core.Stats) string {
		return fmt.Sprintf("%9d (%2d)", s.Gates, s.Levels)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %16s | %16s | %16s\n",
			r.Name, cell(r.Frequency), cell(r.Balanced), cell(r.Random))
	}
	return b.String()
}
