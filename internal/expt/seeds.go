package expt

import (
	"fmt"
	"sort"
	"strings"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

// SeedStats summarizes how the §V-C random tie-break affects result
// quality across synthesis seeds.
type SeedStats struct {
	Name   string
	Seeds  int
	MinG   int
	MedG   int
	MaxG   int
	MinLvl int
	MaxLvl int
}

// SeedSweep synthesizes the benchmark under n different tie-break seeds
// and reports the spread of gate counts and depths; every result is
// verified. A small spread means the heuristic is robust to its random
// component.
func SeedSweep(name string, n int, base core.Options) (SeedStats, error) {
	bm, ok := mcnc.Get(name)
	if !ok {
		return SeedStats{}, fmt.Errorf("expt: unknown benchmark %q", name)
	}
	src := bm.Build()
	alg := opt.Algebraic(src)
	gates := make([]int, 0, n)
	stats := SeedStats{Name: name, Seeds: n, MinLvl: 1 << 30}
	for seed := 0; seed < n; seed++ {
		o := base
		o.Seed = int64(seed)
		tn, _, err := core.Synthesize(alg, o)
		if err != nil {
			return SeedStats{}, fmt.Errorf("expt: %s (seed %d): %w", name, seed, err)
		}
		if _, err := sim.Prove(src, tn, 1); err != nil {
			return SeedStats{}, fmt.Errorf("expt: %s (seed %d) failed verification: %w", name, seed, err)
		}
		s := tn.Stats()
		gates = append(gates, s.Gates)
		if s.Levels < stats.MinLvl {
			stats.MinLvl = s.Levels
		}
		if s.Levels > stats.MaxLvl {
			stats.MaxLvl = s.Levels
		}
	}
	sort.Ints(gates)
	stats.MinG = gates[0]
	stats.MedG = gates[len(gates)/2]
	stats.MaxG = gates[len(gates)-1]
	return stats, nil
}

// RenderSeedSweep formats seed-robustness rows.
func RenderSeedSweep(rows []SeedStats) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Seed robustness — gate count spread over tie-break seeds")
	fmt.Fprintf(&b, "%-10s | %5s | %5s | %5s | %5s | %s\n",
		"Benchmark", "seeds", "min", "med", "max", "levels")
	fmt.Fprintln(&b, strings.Repeat("-", 58))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %5d | %5d | %5d | %5d | %d..%d\n",
			r.Name, r.Seeds, r.MinG, r.MedG, r.MaxG, r.MinLvl, r.MaxLvl)
	}
	return b.String()
}
