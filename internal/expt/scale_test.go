package expt

import (
	"fmt"
	"math/rand"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/sim"
)

// buildScaleNetwork builds a layered pseudo-random network of roughly the
// given node count over the given inputs — a stress shape distinct from
// the structured benchmarks.
func buildScaleNetwork(seed int64, inputs, nodes int) *network.Network {
	rng := rand.New(rand.NewSource(seed))
	nw := network.New(fmt.Sprintf("scale%d", seed))
	var signals []*network.Node
	for i := 0; i < inputs; i++ {
		signals = append(signals, nw.AddInput(fmt.Sprintf("pi%d", i)))
	}
	for g := 0; g < nodes; g++ {
		k := 2 + rng.Intn(3)
		// Bias fanins toward recent signals for a deep, layered shape.
		fanins := make([]*network.Node, 0, k)
		used := map[*network.Node]bool{}
		for len(fanins) < k {
			lo := 0
			if len(signals) > 24 {
				lo = len(signals) - 24
			}
			s := signals[lo+rng.Intn(len(signals)-lo)]
			if !used[s] {
				used[s] = true
				fanins = append(fanins, s)
			}
		}
		cover := logic.NewCover(k)
		for c := 0; c < 1+rng.Intn(3); c++ {
			cube := logic.NewCube(k)
			any := false
			for j := 0; j < k; j++ {
				switch rng.Intn(3) {
				case 0:
					cube[j] = logic.Pos
					any = true
				case 1:
					cube[j] = logic.Neg
					any = true
				}
			}
			if any {
				cover.AddCube(cube)
			}
		}
		if cover.IsZero() {
			cb := logic.NewCube(k)
			cb[0] = logic.Pos
			cover.AddCube(cb)
		}
		signals = append(signals, nw.AddNode(fmt.Sprintf("n%d", g), fanins, cover))
	}
	outs := 0
	for i := len(signals) - 1; i >= 0 && outs < 12; i-- {
		if signals[i].Kind == network.Internal {
			nw.MarkOutput(signals[i])
			outs++
		}
	}
	nw.RemoveDangling()
	return nw
}

// TestScaleFlow pushes a 400-node layered random network through both
// full pipelines and verifies the results — the stress companion to the
// structured-benchmark integration tests.
func TestScaleFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	src := buildScaleNetwork(7, 24, 400)
	if src.GateCount() < 200 {
		t.Fatalf("scale network too small after pruning: %d nodes", src.GateCount())
	}
	alg := opt.Algebraic(src)
	tels, stats, err := core.Synthesize(alg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Prove(src, tels, 1); err != nil {
		t.Fatal(err)
	}
	if tels.MaxFanin() > 3 {
		t.Fatalf("fanin restriction violated: %d", tels.MaxFanin())
	}
	boolNet := opt.Boolean(src)
	oneToOne, err := core.OneToOne(boolNet, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Prove(src, oneToOne, 1); err != nil {
		t.Fatal(err)
	}
	t.Logf("scale: %d nodes -> TELS %d gates (%d ILP calls), one-to-one %d gates",
		src.GateCount(), tels.GateCount(), stats.ILPCalls, oneToOne.GateCount())
}
