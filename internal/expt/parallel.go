package expt

import (
	"runtime"
	"sync"
)

// forEachIndexed runs fn(0..n-1) on a bounded worker pool and returns
// the lowest-index error, so failures are reported deterministically no
// matter how the goroutines are scheduled. Workers ≤ 0 selects
// GOMAXPROCS. Results must be written into index-addressed slots by fn;
// combined with per-index seeds derived from the base experiment seed,
// the parallel drivers produce byte-identical output to the sequential
// ones.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
