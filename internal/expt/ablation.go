package expt

import (
	"fmt"
	"strings"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

// AblationRow measures how much of TELS's quality comes from each design
// choice DESIGN.md calls out: Fig. 4 collapsing and the Theorem-2 merge.
type AblationRow struct {
	Name       string
	Full       core.Stats // the complete algorithm
	NoCollapse core.Stats // without node collapsing
	NoTheorem2 core.Stats // without Theorem-2 merges
	Neither    core.Stats // both disabled
}

// Ablation synthesizes each benchmark four ways, verifying every variant
// by simulation.
func Ablation(names []string, base core.Options) ([]AblationRow, error) {
	variants := []struct {
		set func(*core.Options)
		get func(*AblationRow) *core.Stats
	}{
		{func(o *core.Options) {}, func(r *AblationRow) *core.Stats { return &r.Full }},
		{func(o *core.Options) { o.NoCollapse = true }, func(r *AblationRow) *core.Stats { return &r.NoCollapse }},
		{func(o *core.Options) { o.NoTheorem2 = true }, func(r *AblationRow) *core.Stats { return &r.NoTheorem2 }},
		{func(o *core.Options) { o.NoCollapse = true; o.NoTheorem2 = true },
			func(r *AblationRow) *core.Stats { return &r.Neither }},
	}
	rows := make([]AblationRow, 0, len(names))
	for _, name := range names {
		bm, ok := mcnc.Get(name)
		if !ok {
			return nil, fmt.Errorf("expt: unknown benchmark %q", name)
		}
		src := bm.Build()
		alg := opt.Algebraic(src)
		row := AblationRow{Name: name}
		for _, v := range variants {
			o := base
			v.set(&o)
			tn, _, err := core.Synthesize(alg, o)
			if err != nil {
				return nil, fmt.Errorf("expt: %s ablation: %w", name, err)
			}
			if err := sim.Equivalent(src, tn, 1); err != nil {
				return nil, fmt.Errorf("expt: %s ablation variant failed simulation: %w", name, err)
			}
			*v.get(&row) = tn.Stats()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation formats the ablation study.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation — TELS gate count with design choices disabled")
	fmt.Fprintf(&b, "%-10s | %6s | %11s | %11s | %8s\n",
		"Benchmark", "full", "no-collapse", "no-theorem2", "neither")
	fmt.Fprintln(&b, strings.Repeat("-", 60))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %6d | %11d | %11d | %8d\n",
			r.Name, r.Full.Gates, r.NoCollapse.Gates, r.NoTheorem2.Gates, r.Neither.Gates)
	}
	return b.String()
}
