package expt

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"tels/internal/core"
)

func TestForEachIndexed(t *testing.T) {
	var calls atomic.Int64
	got := make([]int, 10)
	if err := forEachIndexed(10, 3, func(i int) error {
		calls.Add(1)
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 {
		t.Fatalf("calls = %d, want 10", calls.Load())
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}

	// The lowest-index error wins, regardless of scheduling.
	errA, errB := errors.New("a"), errors.New("b")
	err := forEachIndexed(8, 4, func(i int) error {
		switch i {
		case 2:
			return errA
		case 6:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("err = %v, want the index-2 error", err)
	}

	if err := forEachIndexed(0, 4, func(int) error { return errA }); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}

// TestParallelDriversDeterministic runs the parallelized drivers twice
// and demands identical output: row order, stats, and Monte-Carlo rates
// must depend only on the inputs and seeds, never on scheduling.
func TestParallelDriversDeterministic(t *testing.T) {
	names := []string{"mux4", "rd53", "cm152a", "parity8"}

	rows1, err := TableI(names, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := TableI(names, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatalf("TableI not deterministic:\n%+v\nvs\n%+v", rows1, rows2)
	}
	for i, r := range rows1 {
		if r.Name != names[i] {
			t.Fatalf("row %d is %s, want %s (input order lost)", i, r.Name, names[i])
		}
	}

	c1, err := Fig11([]string{"mux4", "rd53"}, []float64{0.5}, []int{0, 1}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Fig11([]string{"mux4", "rd53"}, []float64{0.5}, []int{0, 1}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("Fig11 not deterministic:\n%+v\nvs\n%+v", c1, c2)
	}
}
