package expt

import (
	"fmt"
	"strings"
)

// RenderTableI formats Table I like the paper: one-to-one mapping vs
// threshold network synthesis.
func RenderTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s | %27s | %27s | %s\n", "",
		"One-to-one mapping", "Threshold synthesis (TELS)", "")
	fmt.Fprintf(&b, "%-10s | %7s %7s %9s | %7s %7s %9s | %s\n",
		"Benchmark", "Gates", "Levels", "Area", "Gates", "Levels", "Area", "Sim")
	fmt.Fprintln(&b, strings.Repeat("-", 92))
	for _, r := range rows {
		simMark := "FAIL"
		if r.Verified {
			simMark = "ok"
		}
		fmt.Fprintf(&b, "%-10s | %7d %7d %9d | %7d %7d %9d | %s\n",
			r.Name, r.OneToOne.Gates, r.OneToOne.Levels, r.OneToOne.Area,
			r.TELS.Gates, r.TELS.Levels, r.TELS.Area, simMark)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 92))
	fmt.Fprintf(&b, "Average gate-count reduction vs one-to-one: %.0f%%\n", 100*GateReduction(rows))
	return b.String()
}

// RenderFig10 formats the fanin-restriction sweep.
func RenderFig10(name string, points []Fig10Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — gate count vs fanin restriction (%s)\n", name)
	fmt.Fprintf(&b, "%6s | %12s | %6s\n", "fanin", "one-to-one", "TELS")
	fmt.Fprintln(&b, strings.Repeat("-", 32))
	for _, p := range points {
		fmt.Fprintf(&b, "%6d | %12d | %6d\n", p.Fanin, p.OneToOneGates, p.TELSGates)
	}
	return b.String()
}

// RenderFig11 formats the failure-rate curves.
func RenderFig11(curves []Fig11Curve) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 11 — failure rate vs weight-variation multiplier v (δoff = 1)")
	if len(curves) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%6s |", "v")
	for _, c := range curves {
		fmt.Fprintf(&b, " δon=%d  |", c.DeltaOn)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 8+9*len(curves)))
	for i := range curves[0].V {
		fmt.Fprintf(&b, "%6.2f |", curves[0].V[i])
		for _, c := range curves {
			fmt.Fprintf(&b, " %5.1f%% |", 100*c.Rate[i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderFig12 formats the failure-rate/area tradeoff.
func RenderFig12(v float64, points []Fig12Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — failure rate and area vs δon (v = %.1f, δoff = 1)\n", v)
	fmt.Fprintf(&b, "%6s | %12s | %10s | %13s\n", "δon", "failure rate", "area", "area / δon=0")
	fmt.Fprintln(&b, strings.Repeat("-", 52))
	for _, p := range points {
		fmt.Fprintf(&b, "%6d | %11.1f%% | %10d | %13.2f\n",
			p.DeltaOn, 100*p.FailureRate, p.TotalArea, p.RelativeArea)
	}
	return b.String()
}

// RenderTiming formats the §VI-A timing split.
func RenderTiming(rows []TimingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Timing — factoring vs threshold synthesis (§VI-A)")
	fmt.Fprintf(&b, "%-10s | %12s | %12s | %7s\n", "Benchmark", "factor", "synth", "synth%")
	fmt.Fprintln(&b, strings.Repeat("-", 52))
	totalFrac := 0.0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %12s | %12s | %6.0f%%\n",
			r.Name, r.Factor.Round(10e3), r.Synth.Round(10e3), 100*r.SynthFraction)
		totalFrac += r.SynthFraction
	}
	if len(rows) > 0 {
		fmt.Fprintln(&b, strings.Repeat("-", 52))
		fmt.Fprintf(&b, "Average time in threshold synthesis: %.0f%%\n", 100*totalFrac/float64(len(rows)))
	}
	return b.String()
}
