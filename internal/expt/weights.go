package expt

import (
	"fmt"
	"strings"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

// WeightPoint is one sample of the weight-bound sweep: how the gate count
// and area react as the permitted RTD weight ratio shrinks.
type WeightPoint struct {
	MaxWeight int // 0 = unbounded
	Gates     int
	Levels    int
	Area      int
}

// WeightSweep synthesizes the benchmark under progressively tighter
// weight bounds (RTD peak-current ratios), verifying each result. Bounds
// of 0 mean unbounded.
func WeightSweep(name string, bounds []int, base core.Options) ([]WeightPoint, error) {
	bm, ok := mcnc.Get(name)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", name)
	}
	src := bm.Build()
	alg := opt.Algebraic(src)
	out := make([]WeightPoint, 0, len(bounds))
	for _, w := range bounds {
		o := base
		o.MaxWeight = w
		tn, _, err := core.Synthesize(alg, o)
		if err != nil {
			return nil, fmt.Errorf("expt: %s (maxw=%d): %w", name, w, err)
		}
		if _, err := sim.Prove(src, tn, 1); err != nil {
			return nil, fmt.Errorf("expt: %s (maxw=%d) failed verification: %w", name, w, err)
		}
		s := tn.Stats()
		out = append(out, WeightPoint{MaxWeight: w, Gates: s.Gates, Levels: s.Levels, Area: s.Area})
	}
	return out, nil
}

// RenderWeightSweep formats the weight-bound sweep.
func RenderWeightSweep(name string, points []WeightPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Weight bound sweep — %s (RTD peak-current ratio limit)\n", name)
	fmt.Fprintf(&b, "%9s | %6s | %7s | %6s\n", "max |w|", "gates", "levels", "area")
	fmt.Fprintln(&b, strings.Repeat("-", 38))
	for _, p := range points {
		label := fmt.Sprintf("%d", p.MaxWeight)
		if p.MaxWeight == 0 {
			label = "∞"
		}
		fmt.Fprintf(&b, "%9s | %6d | %7d | %6d\n", label, p.Gates, p.Levels, p.Area)
	}
	return b.String()
}
