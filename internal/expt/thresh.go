package expt

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/truth"
)

// This file benchmarks the threshold-check solver subsystem on real
// synthesis workloads: the node functions of the algebraically factored
// MCNC benchmarks, widest first, checked under the same Fig. 6 cube
// system the synthesis core builds. Three configurations are timed per
// benchmark:
//
//	ilp        Checker{Mode: ilp, NoCache} — the pre-portfolio checker:
//	           every check pays cover construction and a fresh
//	           branch-and-bound solve.
//	pbsat      Checker{Mode: pbsat, NoCache} — the pseudo-Boolean engine
//	           alone, same cold-check discipline.
//	portfolio  the subsystem as deployed: root-LP probe, engine race, and
//	           the UNSAT-certificate cache (reset before every timed pass,
//	           so the speedup is earned within one pass over the workload,
//	           exactly as one synthesis run would).
//
// Instances are deliberately NOT deduplicated: array-style benchmarks
// (comparator stages, adder slices) genuinely instantiate the same wide
// node function many times, and re-deciding those repeats is precisely
// the per-node hot path the portfolio's certificate cache removes. Every
// distinct instance is decided by all three configurations and the
// verdicts and weight vectors are compared before any timing is
// reported, so the table doubles as a bit-identity check of the
// portfolio guarantee.

// threshConfigs are the margin/cap points each instance is checked under:
// the flow default (δon=0, δoff=1), a hardened margin (δon=1), and an
// RTD-style weight cap.
var threshConfigs = []struct {
	DeltaOn, DeltaOff, MaxW int
}{
	{0, 1, 0},
	{1, 1, 0},
	{0, 1, 3},
}

// ThreshInstance is one harvested node function.
type ThreshInstance struct {
	Bench string
	Node  string
	TT    *truth.Table
}

// ThreshRow is one benchmark's per-configuration timing aggregate.
type ThreshRow struct {
	Benchmark string  `json:"benchmark"`
	Nodes     int     `json:"nodes"`
	Distinct  int     `json:"distinct"`
	Checks    int     `json:"checks"`
	MaxVars   int     `json:"max_vars"`
	SatChecks int     `json:"sat_checks"`
	ILPMS     float64 `json:"ilp_ms"`
	PbsatMS   float64 `json:"pbsat_ms"`
	PortMS    float64 `json:"portfolio_ms"`
	Speedup   float64 `json:"portfolio_speedup_vs_ilp"`
}

// HarvestThreshNodes extracts the checkable node functions of a
// benchmark's algebraically factored network: unate, full-support,
// non-constant functions of minVars..maxVars variables (the synthesizer
// never checks above the fanin restriction, and exact cover generation is
// exponential in the width), widest first, at most limit of them
// (0 = no limit). Repeated functions are kept — see the file comment.
func HarvestThreshNodes(name string, minVars, maxVars, limit int) ([]ThreshInstance, error) {
	bm, ok := mcnc.Get(name)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", name)
	}
	nw := opt.Algebraic(bm.Build())
	var out []ThreshInstance
	for _, n := range nw.InternalNodes() {
		if len(n.Fanins) < minVars || len(n.Fanins) > maxVars {
			continue
		}
		tt, err := nw.LocalFunction(n, n.Fanins)
		if err != nil {
			return nil, fmt.Errorf("expt: %s/%s: %w", name, n.Name, err)
		}
		if konst, _ := tt.IsConst(); konst {
			continue
		}
		if len(tt.Support()) != tt.N() || !tt.IsUnate() {
			continue
		}
		out = append(out, ThreshInstance{Bench: name, Node: n.Name, TT: tt})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TT.N() > out[j].TT.N() })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// threshPass times iters full checking passes over the instances and
// returns the mean per-pass wall clock. Portfolio mode keeps the deployed
// cache semantics, but the cache is emptied at the top of every pass, so
// each iteration is one cold synthesis-run equivalent — repetition only
// stretches the timed region (sub-millisecond benchmarks would otherwise
// drown in scheduler noise), it never lets certificates leak across
// passes.
func threshPass(mode core.SolverMode, insts []ThreshInstance, iters int) time.Duration {
	if iters < 1 {
		iters = 1
	}
	t0 := time.Now()
	for it := 0; it < iters; it++ {
		core.ResetUnsatCache()
		chk := &core.Checker{Mode: mode, NoCache: mode != core.SolverPortfolio}
		for _, inst := range insts {
			for _, cfg := range threshConfigs {
				chk.Check(inst.TT, cfg.DeltaOn, cfg.DeltaOff, cfg.MaxW)
			}
		}
	}
	return time.Since(t0) / time.Duration(iters)
}

// minTimedRegion is the floor a single timing sample is stretched to by
// pass repetition.
const minTimedRegion = 50 * time.Millisecond

// ThreshBench decides every harvested instance of the named benchmarks
// under each solver configuration and reports per-benchmark wall-clock
// totals. Identity first: for each (instance, config) the three
// configurations' verdicts and weight vectors are compared, and a
// mismatch aborts the run. Timing second: per configuration, the total
// time of a full pass over the benchmark's instances, minimised over
// reps passes to shed scheduler noise.
func ThreshBench(names []string, minVars, maxVars, limit, reps int) ([]ThreshRow, error) {
	if reps < 1 {
		reps = 1
	}
	modes := []core.SolverMode{core.SolverILP, core.SolverPbsat, core.SolverPortfolio}
	rows := make([]ThreshRow, 0, len(names))
	for _, name := range names {
		insts, err := HarvestThreshNodes(name, minVars, maxVars, limit)
		if err != nil {
			return nil, err
		}
		if len(insts) == 0 {
			continue
		}
		row := ThreshRow{Benchmark: name, Nodes: len(insts)}
		distinct := make(map[string]bool)
		for _, inst := range insts {
			if n := inst.TT.N(); n > row.MaxVars {
				row.MaxVars = n
			}
			distinct[inst.TT.String()] = true
		}
		row.Distinct = len(distinct)

		// Bit-identity gate. Each mode runs cold (no cache) here: the
		// guarantee under test is that the engines themselves agree.
		for _, inst := range insts {
			for _, cfg := range threshConfigs {
				row.Checks++
				var refVec core.WeightVector
				var refOK bool
				for mi, m := range modes {
					chk := &core.Checker{Mode: m, NoCache: true}
					vec, ok := chk.Check(inst.TT, cfg.DeltaOn, cfg.DeltaOff, cfg.MaxW)
					if mi == 0 {
						refVec, refOK = vec, ok
						if ok {
							row.SatChecks++
						}
						continue
					}
					if ok != refOK || !sameVector(vec, refVec) {
						return nil, fmt.Errorf("expt: %s/%s δon=%d δoff=%d maxW=%d: solver %s disagrees with %s (ok %v vs %v, vector %v vs %v)",
							inst.Bench, inst.Node, cfg.DeltaOn, cfg.DeltaOff, cfg.MaxW,
							m, modes[0], ok, refOK, vec, refVec)
					}
				}
			}
		}

		// Timing passes. One calibration pass sizes the repetition count
		// so every sample spans at least minTimedRegion; the same count is
		// used for all modes so they share the measurement discipline.
		iters := 1
		if calib := threshPass(core.SolverILP, insts, 1); calib < minTimedRegion {
			iters = int(minTimedRegion/calib) + 1
			if iters > 64 {
				iters = 64
			}
		}
		best := map[core.SolverMode]time.Duration{}
		for rep := 0; rep < reps; rep++ {
			for _, m := range modes {
				elapsed := threshPass(m, insts, iters)
				if cur, ok := best[m]; !ok || elapsed < cur {
					best[m] = elapsed
				}
			}
		}
		row.ILPMS = float64(best[core.SolverILP].Microseconds()) / 1000
		row.PbsatMS = float64(best[core.SolverPbsat].Microseconds()) / 1000
		row.PortMS = float64(best[core.SolverPortfolio].Microseconds()) / 1000
		if row.PortMS > 0 {
			row.Speedup = row.ILPMS / row.PortMS
		}
		rows = append(rows, row)
	}
	core.ResetUnsatCache()
	return rows, nil
}

// sameVector compares weight vectors componentwise.
func sameVector(a, b core.WeightVector) bool {
	if a.T != b.T || len(a.Weights) != len(b.Weights) {
		return false
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	return true
}

// RenderThreshBench formats the solver-portfolio timing table.
func RenderThreshBench(rows []ThreshRow) string {
	var b strings.Builder
	b.WriteString("threshold-check solver portfolio — widest MCNC node functions\n")
	b.WriteString("(per benchmark: one full checking pass, best of reps; ilp/pbsat run cold\n")
	b.WriteString(" per check, portfolio races engines and keeps its UNSAT-certificate cache)\n\n")
	fmt.Fprintf(&b, "%-10s | %5s %4s %6s %4s %4s | %9s %9s %9s | %7s\n",
		"bench", "nodes", "uniq", "checks", "maxN", "sat", "ilp ms", "pbsat ms", "port ms", "vs ilp")
	fmt.Fprintln(&b, "-------------------------------------------------------------------------------------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %5d %4d %6d %4d %4d | %9.2f %9.2f %9.2f | %6.2fx\n",
			r.Benchmark, r.Nodes, r.Distinct, r.Checks, r.MaxVars, r.SatChecks,
			r.ILPMS, r.PbsatMS, r.PortMS, r.Speedup)
	}
	b.WriteString("\n(verdicts and weight vectors verified identical across all modes before timing)\n")
	return b.String()
}

// WriteThreshBenchCSV emits the table in plottable form.
func WriteThreshBenchCSV(w io.Writer, rows []ThreshRow) error {
	if _, err := fmt.Fprintln(w, "benchmark,nodes,distinct,checks,max_vars,sat_checks,ilp_ms,pbsat_ms,portfolio_ms,portfolio_speedup_vs_ilp"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%g,%g,%g,%g\n",
			r.Benchmark, r.Nodes, r.Distinct, r.Checks, r.MaxVars, r.SatChecks,
			r.ILPMS, r.PbsatMS, r.PortMS, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}
