// Package expt drives the paper's experiments: Table I (gate count,
// levels and area of one-to-one mapping vs TELS), Fig. 10 (gate count vs
// fanin restriction), Fig. 11 (failure rate vs weight-variation
// multiplier) and Fig. 12 (failure rate and area vs defect tolerance), all
// on the recreated MCNC benchmarks.
package expt

import (
	"fmt"
	"time"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/sim"
)

// Flow bundles the two synthesis pipelines of §VI-A for one benchmark:
// script.boolean → one-to-one mapping, and script.algebraic → TELS.
type Flow struct {
	Name      string
	Source    *network.Network
	Algebraic *network.Network
	OneToOne  *core.Network
	TELS      *core.Network
	Stats     core.SynthStats
	// FactorTime and SynthTime split the flow per §VI-A's timing claim.
	FactorTime time.Duration
	SynthTime  time.Duration
}

// RunFlow executes both pipelines on the named benchmark.
func RunFlow(name string, o core.Options) (*Flow, error) {
	bm, ok := mcnc.Get(name)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", name)
	}
	src := bm.Build()

	t0 := time.Now()
	boolNet := opt.Boolean(src)
	algNet := opt.Algebraic(src)
	factorTime := time.Since(t0)

	oneToOne, err := core.OneToOne(boolNet, o)
	if err != nil {
		return nil, fmt.Errorf("expt: %s one-to-one: %w", name, err)
	}
	t1 := time.Now()
	tels, stats, err := core.Synthesize(algNet, o)
	if err != nil {
		return nil, fmt.Errorf("expt: %s TELS: %w", name, err)
	}
	synthTime := time.Since(t1)

	return &Flow{
		Name:       name,
		Source:     src,
		Algebraic:  algNet,
		OneToOne:   oneToOne,
		TELS:       tels,
		Stats:      stats,
		FactorTime: factorTime,
		SynthTime:  synthTime,
	}, nil
}

// Verify checks both threshold networks against the source Boolean
// network — by BDD proof where the cones fit, by simulation otherwise
// (strengthening the paper's "all the synthesized networks were simulated
// for functional correctness" into a formal check where possible).
func (f *Flow) Verify(seed int64) error {
	if _, err := sim.Prove(f.Source, f.OneToOne, seed); err != nil {
		return fmt.Errorf("one-to-one: %w", err)
	}
	if _, err := sim.Prove(f.Source, f.TELS, seed); err != nil {
		return fmt.Errorf("TELS: %w", err)
	}
	return nil
}

// TableIRow is one row of Table I.
type TableIRow struct {
	Name     string
	OneToOne core.Stats
	TELS     core.Stats
	Verified bool
}

// TableI runs the Table I experiment (ψ = 3 in the paper) over the given
// benchmarks, verifying every synthesized network by simulation. The
// benchmarks run in parallel on a bounded worker pool; every benchmark
// synthesizes with the base options (the tie-break seed never depends on
// goroutine scheduling) and the rows come back in input order, so the
// output is identical to a sequential run.
func TableI(names []string, o core.Options) ([]TableIRow, error) {
	rows := make([]TableIRow, len(names))
	err := forEachIndexed(len(names), 0, func(i int) error {
		flow, err := RunFlow(names[i], o)
		if err != nil {
			return err
		}
		if err := flow.Verify(1); err != nil {
			return fmt.Errorf("expt: %s failed simulation: %w", names[i], err)
		}
		rows[i] = TableIRow{
			Name:     names[i],
			OneToOne: flow.OneToOne.Stats(),
			TELS:     flow.TELS.Stats(),
			Verified: true,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// GateReduction returns the average gate-count reduction of TELS relative
// to one-to-one mapping across the rows, as a fraction in [−∞, 1].
func GateReduction(rows []TableIRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range rows {
		if r.OneToOne.Gates > 0 {
			total += 1 - float64(r.TELS.Gates)/float64(r.OneToOne.Gates)
		}
	}
	return total / float64(len(rows))
}

// Fig10Point is one fanin-restriction sample of Fig. 10.
type Fig10Point struct {
	Fanin         int
	OneToOneGates int
	TELSGates     int
}

// Fig10 sweeps the fanin restriction (3..8 in the paper) on one benchmark
// (comp in the paper) and reports both mappers' gate counts.
func Fig10(name string, fanins []int, base core.Options) ([]Fig10Point, error) {
	out := make([]Fig10Point, 0, len(fanins))
	for _, psi := range fanins {
		o := base
		o.Fanin = psi
		flow, err := RunFlow(name, o)
		if err != nil {
			return nil, err
		}
		if err := flow.Verify(1); err != nil {
			return nil, fmt.Errorf("expt: %s ψ=%d failed simulation: %w", name, psi, err)
		}
		out = append(out, Fig10Point{
			Fanin:         psi,
			OneToOneGates: flow.OneToOne.GateCount(),
			TELSGates:     flow.TELS.GateCount(),
		})
	}
	return out, nil
}

// DefectSet is the benchmark subset used for the Monte-Carlo defect
// experiments. The paper runs the whole suite; this subset keeps the
// experiment fast while spanning the same circuit families.
func DefectSet() []string {
	return []string{
		"cm152a", "cm85a", "cmb", "pm1", "tcon",
		"mux4", "comp4", "adder4", "parity8", "rd53",
		"maj5", "con1", "z4ml", "dec4", "misex1",
	}
}

// Fig11Curve is one δon curve of Fig. 11: failure rate per variation
// multiplier.
type Fig11Curve struct {
	DeltaOn int
	V       []float64
	Rate    []float64
}

// Fig11 measures the failure rate as the variation multiplier grows, one
// curve per δon value (0..3 in the paper, δoff fixed at 1).
func Fig11(names []string, vs []float64, deltaOns []int, trials int, seed int64) ([]Fig11Curve, error) {
	curves := make([]Fig11Curve, 0, len(deltaOns))
	for _, don := range deltaOns {
		pairs, err := synthPairs(names, don, seed)
		if err != nil {
			return nil, err
		}
		curve := Fig11Curve{DeltaOn: don}
		for _, v := range vs {
			rate, err := sim.FailureRate(pairs, v, sim.FailureRateConfig{
				Trials: trials,
				Seed:   seed + int64(don)*1000 + int64(v*100),
			})
			if err != nil {
				return nil, err
			}
			curve.V = append(curve.V, v)
			curve.Rate = append(curve.Rate, rate)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// Fig12Point is one δon sample of Fig. 12 at fixed v.
type Fig12Point struct {
	DeltaOn      int
	FailureRate  float64
	TotalArea    int
	RelativeArea float64 // area normalized to the δon=0 area
}

// Fig12 measures failure rate and total network area as δon grows, at a
// fixed variation multiplier (v = 0.8 in the paper).
func Fig12(names []string, v float64, deltaOns []int, trials int, seed int64) ([]Fig12Point, error) {
	out := make([]Fig12Point, 0, len(deltaOns))
	baseArea := 0
	for _, don := range deltaOns {
		pairs, err := synthPairs(names, don, seed)
		if err != nil {
			return nil, err
		}
		rate, err := sim.FailureRate(pairs, v, sim.FailureRateConfig{
			Trials: trials,
			Seed:   seed + int64(don)*1000,
		})
		if err != nil {
			return nil, err
		}
		area := 0
		for _, p := range pairs {
			area += p.Threshold.Area()
		}
		if don == deltaOns[0] {
			baseArea = area
		}
		rel := 1.0
		if baseArea > 0 {
			rel = float64(area) / float64(baseArea)
		}
		out = append(out, Fig12Point{DeltaOn: don, FailureRate: rate, TotalArea: area, RelativeArea: rel})
	}
	return out, nil
}

// synthPairs synthesizes the benchmarks with the given δon for the defect
// experiments. The benchmarks synthesize in parallel; each derives its
// options purely from the base seed and δon, and the pair order follows
// the input names, so the Monte-Carlo streams that consume the pairs see
// exactly the sequence a sequential run would produce.
func synthPairs(names []string, deltaOn int, seed int64) ([]sim.Pair, error) {
	pairs := make([]sim.Pair, len(names))
	err := forEachIndexed(len(names), 0, func(i int) error {
		name := names[i]
		bm, ok := mcnc.Get(name)
		if !ok {
			return fmt.Errorf("expt: unknown benchmark %q", name)
		}
		src := bm.Build()
		alg := opt.Algebraic(src)
		tn, _, err := core.Synthesize(alg, core.Options{
			Fanin: 3, DeltaOn: deltaOn, DeltaOff: 1, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("expt: %s (δon=%d): %w", name, deltaOn, err)
		}
		pairs[i] = sim.Pair{Name: name, Bool: src, Threshold: tn}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// TimingRow reports the §VI-A timing split for one benchmark.
type TimingRow struct {
	Name          string
	Factor        time.Duration
	Synth         time.Duration
	SynthFraction float64
}

// Timing measures how the flow time splits between network factoring and
// threshold synthesis (the paper reports 42% in synthesis on average).
func Timing(names []string, o core.Options) ([]TimingRow, error) {
	rows := make([]TimingRow, 0, len(names))
	for _, name := range names {
		flow, err := RunFlow(name, o)
		if err != nil {
			return nil, err
		}
		total := flow.FactorTime + flow.SynthTime
		frac := 0.0
		if total > 0 {
			frac = float64(flow.SynthTime) / float64(total)
		}
		rows = append(rows, TimingRow{
			Name:          name,
			Factor:        flow.FactorTime,
			Synth:         flow.SynthTime,
			SynthFraction: frac,
		})
	}
	return rows, nil
}
