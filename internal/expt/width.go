package expt

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"tels/internal/fsim"
	"tels/internal/sim"
)

// WidthRow is one benchmark × lane-width timing sample of the Fig. 11
// inner loop: a perturbed packed evaluation plus golden comparison per
// Monte-Carlo trial. Failures is the number of trials whose disturbed
// network differed from the golden reference — identical at every width
// by the engine's bit-identity guarantee, and re-checked here.
type WidthRow struct {
	Benchmark string  `json:"benchmark"`
	Width     int     `json:"width"`
	Vectors   int     `json:"vectors"`
	Gates     int     `json:"gates"`
	Trials    int     `json:"trials"`
	Failures  int     `json:"failures"`
	MS        float64 `json:"ms"`
	Speedup   float64 `json:"speedup_vs_w1"`
}

// widthBatch packs the vectors the Fig. 11 inner loop would sweep:
// exhaustive for narrow networks, `samples` random vectors otherwise.
func widthBatch(pair sim.Pair, samples int, rng *rand.Rand, w fsim.Width) (*fsim.Batch, error) {
	names := make([]string, len(pair.Bool.Inputs))
	for i, in := range pair.Bool.Inputs {
		names[i] = in.Name
	}
	if len(names) <= sim.ExhaustiveLimit {
		return fsim.ExhaustiveW(names, w)
	}
	return fsim.RandomW(names, samples, rng, w), nil
}

// WidthBench times the packed engine's Fig. 11 inner loop
// (ThreshSim.EvalPerturbed + Batch.Differs) at every supported lane-block
// width on the named benchmarks, synthesized once at δon=1. Each width
// replays the identical RNG stream — same vectors, same disturbances — so
// the per-width failure counts double as a built-in bit-identity check;
// a mismatch is returned as an error. Timing covers only the per-trial
// evaluate-and-compare step, not synthesis, compilation, or noise
// drawing.
func WidthBench(names []string, v float64, trials, samples int, seed int64) ([]WidthRow, error) {
	pairs, err := synthPairs(names, 1, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]WidthRow, 0, len(pairs)*len(fsim.Widths()))
	for _, pair := range pairs {
		bsim, err := fsim.CompileBool(pair.Bool)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", pair.Name, err)
		}
		tsim, err := fsim.CompileThresh(pair.Threshold)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", pair.Name, err)
		}
		ev, err := pair.Threshold.NewEvaluator()
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", pair.Name, err)
		}
		baseFailures := -1
		var baseTime time.Duration
		for _, w := range fsim.Widths() {
			// One seed for every width: identical vectors and noise, so
			// failure counts must agree bit for bit.
			rng := rand.New(rand.NewSource(seed))
			batch, err := widthBatch(pair, samples, rng, w)
			if err != nil {
				return nil, fmt.Errorf("expt: %s: %w", pair.Name, err)
			}
			ref, err := bsim.Eval(batch)
			if err != nil {
				return nil, fmt.Errorf("expt: %s: %w", pair.Name, err)
			}
			golden := make([][]uint64, len(ref))
			for o := range ref {
				golden[o] = append([]uint64(nil), ref[o]...)
			}
			failures := 0
			var elapsed time.Duration
			for trial := 0; trial < trials; trial++ {
				noise := sim.PerturbFor(ev, v, rng).Noise()
				t0 := time.Now()
				got, err := tsim.EvalPerturbed(batch, noise)
				if err != nil {
					return nil, fmt.Errorf("expt: %s: %w", pair.Name, err)
				}
				bad := batch.Differs(golden, got)
				elapsed += time.Since(t0)
				if bad {
					failures++
				}
			}
			row := WidthRow{
				Benchmark: pair.Name,
				Width:     w.Words(),
				Vectors:   batch.Len(),
				Gates:     len(pair.Threshold.Gates),
				Trials:    trials,
				Failures:  failures,
				MS:        float64(elapsed.Microseconds()) / 1000,
			}
			if w == fsim.W1 {
				baseFailures = failures
				baseTime = elapsed
				row.Speedup = 1
			} else {
				if failures != baseFailures {
					return nil, fmt.Errorf("expt: %s: width %s counted %d failures, width 1 counted %d (bit-identity violated)",
						pair.Name, w, failures, baseFailures)
				}
				if elapsed > 0 {
					row.Speedup = float64(baseTime) / float64(elapsed)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderWidthBench formats the lane-width sweep as a per-benchmark table.
func RenderWidthBench(v float64, rows []WidthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsim lane-width sweep — Fig. 11 inner loop (EvalPerturbed + Differs), v=%.1f\n\n", v)
	fmt.Fprintf(&b, "%-8s | %7s %5s %6s | %5s | %9s | %7s\n",
		"bench", "vectors", "gates", "trials", "width", "ms", "vs W=1")
	fmt.Fprintln(&b, "----------------------------------------------------------------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %7d %5d %6d | %5d | %9.3f | %6.2fx\n",
			r.Benchmark, r.Vectors, r.Gates, r.Trials, r.Width, r.MS, r.Speedup)
	}
	b.WriteString("\n(failure counts are verified identical across widths before timing is reported)\n")
	return b.String()
}

// WriteWidthBenchCSV emits the sweep in plottable form.
func WriteWidthBenchCSV(w io.Writer, rows []WidthRow) error {
	if _, err := fmt.Fprintln(w, "benchmark,width,vectors,gates,trials,failures,ms,speedup_vs_w1"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%g,%g\n",
			r.Benchmark, r.Width, r.Vectors, r.Gates, r.Trials, r.Failures, r.MS, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}
