package expt

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"tels/internal/blif"
	"tels/internal/mcnc"
	"tels/internal/netcore"
	"tels/internal/network"
	"tels/internal/opt"
)

// NetcoreBenchRow is one (benchmark, stage) measurement of the pointer
// network representation against the arena-backed netcore one.
type NetcoreBenchRow struct {
	Bench        string `json:"bench"`
	Stage        string `json:"stage"` // build | collapse | sweep
	Gates        int    `json:"gates"`
	PtrNsOp      int64  `json:"ptr_ns_op"`
	PtrAllocsOp  int64  `json:"ptr_allocs_op"`
	CoreNsOp     int64  `json:"core_ns_op"`
	CoreAllocsOp int64  `json:"core_allocs_op"`
}

// measure times fn over reps iterations after one warm-up run, reporting
// ns/op and heap allocations (mallocs) per op.
func measure(reps int, fn func()) (nsOp, allocsOp int64) {
	fn()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed.Nanoseconds() / int64(reps), int64(m1.Mallocs-m0.Mallocs) / int64(reps)
}

// NetcoreBench compares the two network representations stage by stage on
// the named MCNC benchmarks:
//
//	build     parse the benchmark's BLIF into each representation
//	collapse  copy the parsed network, then Eliminate / EliminateCore 0
//	sweep     copy the parsed network, then Sweep / SweepCore
//
// The copy (Clone on the pointer side, FromNetwork on the arena side) is
// included: it is each representation's cost of materializing a mutable
// working set. Before any timing, both paths of every stage are checked
// to produce byte-identical BLIF.
func NetcoreBench(names []string, reps int) ([]NetcoreBenchRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []NetcoreBenchRow
	for _, name := range names {
		src := mcnc.Build(name)
		text, err := blif.WriteString(src)
		if err != nil {
			return nil, err
		}
		pw, err := blif.ParseString(text)
		if err != nil {
			return nil, err
		}
		// Both sides must copy from the same normalized creation order:
		// pass decisions are iteration-order dependent, and Clone and
		// FromNetwork both preserve their source's order.
		base := pw.Clone()
		gates := base.GateCount()

		// Identity gate: each stage must agree across representations.
		for _, st := range []struct {
			name string
			ptr  func(*network.Network)
			core func(*netcore.Network)
		}{
			{"collapse", func(nw *network.Network) { opt.Eliminate(nw, 0) },
				func(nw *netcore.Network) { opt.EliminateCore(nw, 0) }},
			{"sweep", func(nw *network.Network) { opt.Sweep(nw) },
				func(nw *netcore.Network) { opt.SweepCore(nw) }},
		} {
			p := base.Clone()
			st.ptr(p)
			want, err := blif.WriteString(p)
			if err != nil {
				return nil, err
			}
			c := netcore.FromNetwork(base)
			st.core(c)
			got, err := blif.WriteString(c.ToNetwork())
			if err != nil {
				return nil, err
			}
			if want != got {
				return nil, fmt.Errorf("netcore bench: %s/%s: representations disagree", name, st.name)
			}
		}

		stage := func(stageName string, ptr, core func()) {
			row := NetcoreBenchRow{Bench: name, Stage: stageName, Gates: gates}
			row.PtrNsOp, row.PtrAllocsOp = measure(reps, ptr)
			row.CoreNsOp, row.CoreAllocsOp = measure(reps, core)
			rows = append(rows, row)
		}
		stage("build",
			func() {
				if _, err := blif.ParseString(text); err != nil {
					panic(err)
				}
			},
			func() {
				if _, err := blif.ParseCoreString(text); err != nil {
					panic(err)
				}
			})
		stage("collapse",
			func() { opt.Eliminate(base.Clone(), 0) },
			func() { opt.EliminateCore(netcore.FromNetwork(base), 0) })
		stage("sweep",
			func() { opt.Sweep(base.Clone()) },
			func() { opt.SweepCore(netcore.FromNetwork(base)) })
	}
	return rows, nil
}

// RenderNetcoreBench renders the comparison as a table.
func RenderNetcoreBench(rows []NetcoreBenchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "netcore vs pointer representation (ns/op, allocs/op)\n")
	fmt.Fprintf(&sb, "%-8s %-9s %6s %14s %12s %14s %12s %8s\n",
		"bench", "stage", "gates", "ptr ns/op", "ptr allocs", "core ns/op", "core allocs", "allocs x")
	for _, r := range rows {
		ratio := "-"
		if r.CoreAllocsOp > 0 {
			ratio = fmt.Sprintf("%.2f", float64(r.PtrAllocsOp)/float64(r.CoreAllocsOp))
		}
		fmt.Fprintf(&sb, "%-8s %-9s %6d %14d %12d %14d %12d %8s\n",
			r.Bench, r.Stage, r.Gates, r.PtrNsOp, r.PtrAllocsOp, r.CoreNsOp, r.CoreAllocsOp, ratio)
	}
	return sb.String()
}

// WriteNetcoreBenchCSV emits the rows as CSV.
func WriteNetcoreBenchCSV(w io.Writer, rows []NetcoreBenchRow) error {
	if _, err := fmt.Fprintln(w, "bench,stage,gates,ptr_ns_op,ptr_allocs_op,core_ns_op,core_allocs_op"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d\n",
			r.Bench, r.Stage, r.Gates, r.PtrNsOp, r.PtrAllocsOp, r.CoreNsOp, r.CoreAllocsOp); err != nil {
			return err
		}
	}
	return nil
}
