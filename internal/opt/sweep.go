// Package opt implements multi-level Boolean network optimization passes
// modelled on the SIS commands the paper's flow relies on: sweep, node
// simplification, eliminate, algebraic extraction and bounded-fanin
// technology decomposition, composed into script pipelines that play the
// role of script.algebraic and script.boolean.
package opt

import (
	"tels/internal/logic"
	"tels/internal/network"
)

// nodeConst reports whether the node's cover is syntactically constant.
func nodeConst(n *network.Node) (isConst, value bool) {
	if n.Kind != network.Internal {
		return false, false
	}
	if n.Cover.IsZero() {
		return true, false
	}
	if n.Cover.HasUniverse() {
		return true, true
	}
	return false, false
}

// nodeWire reports whether the node is a single-literal function of its
// single fanin: a buffer (phase Pos) or inverter (phase Neg).
func nodeWire(n *network.Node) (wire bool, phase logic.Phase) {
	if n.Kind != network.Internal || len(n.Fanins) != 1 || len(n.Cover.Cubes) != 1 {
		return false, logic.DC
	}
	p := n.Cover.Cubes[0][0]
	if p == logic.DC {
		return false, logic.DC // constant 1, handled by nodeConst
	}
	return true, p
}

// dropFaninConst rewrites the node's cover with fanin position i fixed to
// the constant value, removing the position.
func dropFaninConst(n *network.Node, i int, value bool) {
	ph := logic.Neg
	if value {
		ph = logic.Pos
	}
	reduced := n.Cover.Cofactor(i, ph)
	n.Cover = removePosition(reduced, i)
	n.Fanins = append(n.Fanins[:i], n.Fanins[i+1:]...)
}

// removePosition deletes variable position i from every cube. The position
// must be DC in all cubes (as after a cofactor).
func removePosition(f logic.Cover, i int) logic.Cover {
	out := logic.NewCover(f.N - 1)
	for _, c := range f.Cubes {
		d := make(logic.Cube, 0, f.N-1)
		d = append(d, c[:i]...)
		d = append(d, c[i+1:]...)
		out.AddCube(d)
	}
	return out
}

// mergeDuplicateFanins folds repeated fanin entries into a single column.
// Cubes requiring contradictory phases of the same signal are dropped.
func mergeDuplicateFanins(n *network.Node) bool {
	seen := make(map[*network.Node]int)
	dup := false
	for _, f := range n.Fanins {
		if _, ok := seen[f]; ok {
			dup = true
			break
		}
		seen[f] = 1
	}
	if !dup {
		return false
	}
	var fanins []*network.Node
	index := make(map[*network.Node]int)
	for _, f := range n.Fanins {
		if _, ok := index[f]; !ok {
			index[f] = len(fanins)
			fanins = append(fanins, f)
		}
	}
	out := logic.NewCover(len(fanins))
nextCube:
	for _, c := range n.Cover.Cubes {
		d := logic.NewCube(len(fanins))
		for i, p := range c {
			if p == logic.DC {
				continue
			}
			j := index[n.Fanins[i]]
			if d[j] != logic.DC && d[j] != p {
				continue nextCube // x * !x
			}
			d[j] = p
		}
		out.AddCube(d)
	}
	n.Fanins = fanins
	n.Cover = out
	return true
}

// Sweep simplifies the network structurally: duplicate fanins are merged,
// constant and wire (buffer/inverter) fanins are absorbed into their
// fanouts, and dangling logic is removed. It returns the number of nodes
// removed. Output nodes are never deleted, so output names survive.
func Sweep(nw *network.Network) int {
	for {
		changed := false
		order, err := nw.TopoSort()
		if err != nil {
			panic(err)
		}
		for _, n := range order {
			if n.Kind != network.Internal {
				continue
			}
			if mergeDuplicateFanins(n) {
				changed = true
			}
			for i := 0; i < len(n.Fanins); {
				f := n.Fanins[i]
				if isC, v := nodeConst(f); isC {
					dropFaninConst(n, i, v)
					changed = true
					continue
				}
				if wire, ph := nodeWire(f); wire {
					// Rewire through the buffer/inverter, flipping the
					// column phase for an inverter.
					n.Fanins[i] = f.Fanins[0]
					if ph == logic.Neg {
						for _, c := range n.Cover.Cubes {
							switch c[i] {
							case logic.Pos:
								c[i] = logic.Neg
							case logic.Neg:
								c[i] = logic.Pos
							}
						}
					}
					changed = true
					// The rewire may have introduced a duplicate fanin.
					mergeDuplicateFanins(n)
					if i >= len(n.Fanins) {
						break
					}
					continue
				}
				i++
			}
			// Normalize trivially redundant covers.
			scc := n.Cover.SCC()
			if len(scc.Cubes) != len(n.Cover.Cubes) {
				n.Cover = scc
				changed = true
			}
		}
		removed := nw.RemoveDangling()
		if !changed && removed == 0 {
			return 0
		}
		if !changed {
			return removed
		}
	}
}
