package opt

import (
	"tels/internal/logic"
	"tels/internal/network"
	"tels/internal/truth"
)

// dcMaxConeInputs bounds the primary-input support of the fanin cones
// enumerated when computing satisfiability don't-cares.
const dcMaxConeInputs = 12

// SimplifyDC minimizes each node against its satisfiability don't-cares:
// fanin value combinations that no primary-input assignment can produce
// (because the fanin cones share logic) are free, so the node's cover may
// change there. This is the don't-care ingredient that distinguishes the
// SIS script.boolean family from plain algebraic cleanup. Only nodes
// whose combined fanin cones stay within dcMaxConeInputs primary inputs
// are processed. Returns the number of nodes improved.
func SimplifyDC(nw *network.Network) int {
	changed := 0
	order, err := nw.TopoSort()
	if err != nil {
		panic(err)
	}
	// Transitive-fanin PI supports, computed bottom-up.
	support := make(map[*network.Node]map[*network.Node]bool, len(order))
	for _, n := range order {
		if n.Kind == network.Input {
			support[n] = map[*network.Node]bool{n: true}
			continue
		}
		s := make(map[*network.Node]bool)
		for _, f := range n.Fanins {
			for pi := range support[f] {
				s[pi] = true
			}
		}
		support[n] = s
	}
	for _, n := range order {
		if n.Kind != network.Internal || len(n.Fanins) < 2 || len(n.Fanins) > SimplifyMaxVars {
			continue
		}
		if simplifyNodeDC(nw, n, support[n]) {
			changed++
		}
	}
	if changed > 0 {
		nw.RemoveDangling()
	}
	return changed
}

// simplifyNodeDC rewrites one node against the unreachable fanin patterns
// of its cone. The node's global function is unchanged: its local cover
// only moves on patterns that never occur.
func simplifyNodeDC(nw *network.Network, n *network.Node, piSet map[*network.Node]bool) bool {
	if len(piSet) > dcMaxConeInputs {
		return false
	}
	pis := make([]*network.Node, 0, len(piSet))
	for pi := range piSet {
		pis = append(pis, pi)
	}
	// Deterministic order for reproducible results.
	for i := 1; i < len(pis); i++ {
		for j := i; j > 0 && pis[j-1].Name > pis[j].Name; j-- {
			pis[j-1], pis[j] = pis[j], pis[j-1]
		}
	}
	// Fanin cone functions over the shared PI support.
	cones := make([]*truth.Table, len(n.Fanins))
	for i, f := range n.Fanins {
		tt, err := nw.LocalFunction(f, pis)
		if err != nil {
			return false
		}
		cones[i] = tt
	}
	k := len(n.Fanins)
	reachable := make([]bool, 1<<uint(k))
	seen := 0
	for m := 0; m < 1<<uint(len(pis)); m++ {
		v := 0
		for i, tt := range cones {
			if tt.Get(m) {
				v |= 1 << uint(i)
			}
		}
		if !reachable[v] {
			reachable[v] = true
			seen++
			if seen == len(reachable) {
				return false // every pattern occurs: no don't-cares
			}
		}
	}
	dc := truth.New(k)
	for v, r := range reachable {
		if !r {
			dc.Set(v, true)
		}
	}
	on := truth.FromCover(n.Cover)
	cover := on.MinimalSOPWithDC(dc)
	if cover.LiteralCount() >= n.Cover.LiteralCount() && len(cover.Cubes) >= len(n.Cover.Cubes) {
		return false
	}
	// The don't-cares can reveal the node as constant on all reachable
	// patterns.
	if cover.IsZero() {
		n.Fanins = nil
		n.Cover = logic.Zero(0)
		return true
	}
	if cover.HasUniverse() {
		n.Fanins = nil
		n.Cover = logic.One(0)
		return true
	}
	// Drop fanins the new cover no longer mentions.
	used := cover.Support()
	if len(used) != k {
		fanins := make([]*network.Node, len(used))
		remap := make(map[int]int, len(used))
		for i, v := range used {
			fanins[i] = n.Fanins[v]
			remap[v] = i
		}
		reduced := logic.NewCover(len(used))
		for _, c := range cover.Cubes {
			d := logic.NewCube(len(used))
			for v, p := range c {
				if p != logic.DC {
					d[remap[v]] = p
				}
			}
			reduced.AddCube(d)
		}
		n.Fanins = fanins
		cover = reduced
	}
	n.Cover = cover
	return true
}
