package opt

import (
	"tels/internal/logic"
	"tels/internal/netcore"
	"tels/internal/truth"
)

// SimplifyNodesCore is the arena port of SimplifyNodes: each net's cover
// is replaced by an irredundant prime cover of its local function, fanins
// the function does not depend on are dropped.
func SimplifyNodesCore(nw *netcore.Network) int {
	changed := 0
	for _, n := range nw.InternalNets() {
		fanins := nw.NetFanins(n)
		width := len(fanins)
		cov := nw.NetCover(n)
		if width > SimplifyMaxVars {
			if nf, ncov, ok := simplifyWideCore(fanins, cov); ok {
				nw.SetFunction(n, nf, ncov)
				changed++
			}
			continue
		}
		tt := truth.FromCover(cov)
		if isConst, v := tt.IsConst(); isConst {
			if width == 0 {
				continue
			}
			if v {
				nw.SetFunction(n, nil, logic.One(0))
			} else {
				nw.SetFunction(n, nil, logic.Zero(0))
			}
			changed++
			continue
		}
		sup := tt.Support()
		reduced := tt
		nf := fanins
		if len(sup) != width {
			reduced = tt.Project(sup)
			nf = make([]netcore.Net, len(sup))
			for i, v := range sup {
				nf[i] = fanins[v]
			}
		}
		cover := reduced.MinimalSOP()
		if len(nf) != width || cover.LiteralCount() < cov.LiteralCount() ||
			len(cover.Cubes) < len(cov.Cubes) {
			nw.SetFunction(n, nf, cover)
			changed++
		}
	}
	if changed > 0 {
		nw.RemoveDangling()
	}
	return changed
}

// simplifyWideCore mirrors simplifyWide for slab-backed nets.
func simplifyWideCore(fanins []netcore.Net, cov logic.Cover) ([]netcore.Net, logic.Cover, bool) {
	cover := cov.Minimize()
	if cover.LiteralCount() >= cov.LiteralCount() && len(cover.Cubes) >= len(cov.Cubes) {
		return nil, logic.Cover{}, false
	}
	nf := fanins
	sup := cover.Support()
	if len(sup) != len(fanins) {
		nf = make([]netcore.Net, len(sup))
		keep := make(map[int]int, len(sup))
		for i, v := range sup {
			nf[i] = fanins[v]
			keep[v] = i
		}
		reduced := logic.NewCover(len(sup))
		for _, c := range cover.Cubes {
			d := logic.NewCube(len(sup))
			for v, p := range c {
				if p != logic.DC {
					d[keep[v]] = p
				}
			}
			reduced.AddCube(d)
		}
		cover = reduced
	}
	return nf, cover, true
}

// EliminateCore is the arena port of Eliminate: low-value nets are
// collapsed into their fanouts.
func EliminateCore(nw *netcore.Network, threshold int) int {
	eliminated := 0
	const maxPasses = 40
	for pass := 0; pass < maxPasses; pass++ {
		outputs := make(map[netcore.Net]bool, len(nw.Outputs()))
		for _, o := range nw.Outputs() {
			outputs[o] = true
		}
		internals := nw.InternalNets()
		consumers := make(map[netcore.Net][]netcore.Net)
		for _, m := range internals {
			seen := map[netcore.Net]bool{}
			for _, f := range nw.NetFanins(m) {
				if nw.NetKind(f) == netcore.NetFunc && !seen[f] {
					seen[f] = true
					consumers[f] = append(consumers[f], m)
				}
			}
		}
		dirty := make(map[netcore.Net]bool)
		changed := 0
		for _, n := range internals {
			if outputs[n] || dirty[n] || len(nw.NetFanins(n)) == 0 {
				continue
			}
			cons := consumers[n]
			if len(cons) == 0 {
				continue
			}
			refs := 0
			collapsible := true
			for _, m := range cons {
				if dirty[m] {
					collapsible = false
					break
				}
				if combinedSupportSizeCore(nw, m, n) > EliminateMaxSupport {
					collapsible = false
					break
				}
				phases, nCubes, width := nw.NetCubes(m)
				for i, f := range nw.NetFanins(m) {
					if f != n {
						continue
					}
					for c := 0; c < nCubes; c++ {
						if phases[c*width+i] != logic.DC {
							refs++
						}
					}
				}
			}
			if !collapsible || refs == 0 {
				continue
			}
			L := coverLiteralCount(nw, n)
			if refs*L-L-refs > threshold {
				continue
			}
			ok := true
			for _, m := range cons {
				if !CollapseFaninCore(nw, m, n) {
					ok = false
					break
				}
			}
			if !ok {
				// Partially collapsed consumers stay functionally correct
				// (CollapseFaninCore is exact); mark the region dirty.
				dirty[n] = true
				for _, m := range cons {
					dirty[m] = true
				}
				continue
			}
			dirty[n] = true
			for _, m := range cons {
				dirty[m] = true
			}
			changed++
			eliminated++
		}
		nw.RemoveDangling()
		if changed == 0 {
			return eliminated
		}
	}
	return eliminated
}

// coverLiteralCount counts non-DC positions of a net's cover on the slab.
func coverLiteralCount(nw *netcore.Network, n netcore.Net) int {
	phases, _, _ := nw.NetCubes(n)
	lits := 0
	for _, p := range phases {
		if p != logic.DC {
			lits++
		}
	}
	return lits
}

func combinedSupportSizeCore(nw *netcore.Network, m, n netcore.Net) int {
	set := make(map[netcore.Net]bool)
	for _, f := range nw.NetFanins(m) {
		if f != n {
			set[f] = true
		}
	}
	for _, f := range nw.NetFanins(n) {
		set[f] = true
	}
	return len(set)
}

// CollapseFaninCore rewrites net m with fanin n substituted by n's
// function, combining the two exactly over a window truth table.
func CollapseFaninCore(nw *netcore.Network, m, n netcore.Net) bool {
	var support []netcore.Net
	seen := make(map[netcore.Net]bool)
	for _, f := range nw.NetFanins(m) {
		if f == n {
			continue
		}
		if !seen[f] {
			seen[f] = true
			support = append(support, f)
		}
	}
	for _, f := range nw.NetFanins(n) {
		if !seen[f] {
			seen[f] = true
			support = append(support, f)
		}
	}
	if len(support) > EliminateMaxSupport {
		return false
	}
	tt, err := nw.NetLocalTT(m, support)
	if err != nil {
		return false
	}
	sup := tt.Support()
	reduced := tt
	fanins := support
	if len(sup) != len(support) {
		reduced = tt.Project(sup)
		fanins = make([]netcore.Net, len(sup))
		for i, v := range sup {
			fanins[i] = support[v]
		}
	}
	if isConst, v := reduced.IsConst(); isConst {
		if v {
			nw.SetFunction(m, nil, logic.One(0))
		} else {
			nw.SetFunction(m, nil, logic.Zero(0))
		}
		return true
	}
	nw.SetFunction(m, fanins, reduced.MinimalSOP())
	return true
}
