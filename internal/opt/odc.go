package opt

import (
	"sort"

	"tels/internal/logic"
	"tels/internal/network"
	"tels/internal/truth"
)

// odcMaxNetworkNodes bounds the network size for the full don't-care pass
// (every candidate node costs two whole-network simulations per cone
// vector).
const odcMaxNetworkNodes = 600

// SimplifyFull minimizes each node against both its satisfiability
// don't-cares (fanin patterns no input can produce) and its observability
// don't-cares (patterns where no primary output is sensitive to the
// node). This is the don't-care machinery of SIS's full_simplify,
// computed exactly by cone enumeration. Nodes are processed one at a
// time against the *current* network, so each rewrite preserves the
// network function and sequential application is sound (avoiding the
// classical ODC-compatibility pitfall). Returns the number of nodes
// improved.
func SimplifyFull(nw *network.Network) int {
	if nw.GateCount() > odcMaxNetworkNodes {
		return SimplifyDC(nw)
	}
	changed := 0
	order, err := nw.TopoSort()
	if err != nil {
		panic(err)
	}
	outputs := make(map[*network.Node]bool, len(nw.Outputs))
	for _, o := range nw.Outputs {
		outputs[o] = true
	}
	for _, n := range order {
		if n.Kind != network.Internal || outputs[n] ||
			len(n.Fanins) < 1 || len(n.Fanins) > SimplifyMaxVars {
			continue
		}
		if simplifyNodeFull(nw, n) {
			changed++
		}
	}
	if changed > 0 {
		nw.RemoveDangling()
	}
	return changed
}

// simplifyNodeFull computes the exact per-pattern don't-care set of one
// node (unreachable or unobservable on every producing input vector) and
// reminimizes its cover against it.
func simplifyNodeFull(nw *network.Network, n *network.Node) bool {
	// PI support of the node's fanin cones (for reachability).
	coneSet := make(map[*network.Node]bool)
	var collect func(x *network.Node)
	collect = func(x *network.Node) {
		if x.Kind == network.Input {
			coneSet[x] = true
			return
		}
		for _, f := range x.Fanins {
			collect(f)
		}
	}
	for _, f := range n.Fanins {
		collect(f)
	}
	if len(coneSet) > dcMaxConeInputs {
		return false
	}
	// Observability needs the full PI space restricted to... flipping n
	// only matters through its fanout cone, but the fanout cone's other
	// inputs range over all PIs. Enumerating all PIs is exponential, so
	// restrict to networks whose total PI count is enumerable.
	if len(nw.Inputs) > dcMaxConeInputs {
		return simplifyNodeDC(nw, n, coneSet)
	}

	pis := append([]*network.Node(nil), nw.Inputs...)
	sort.Slice(pis, func(i, j int) bool { return pis[i].Name < pis[j].Name })
	topo, err := nw.TopoSort()
	if err != nil {
		return false
	}

	k := len(n.Fanins)
	const (
		unseen = iota
		careOnly
		dcOnly
	)
	state := make([]uint8, 1<<uint(k))
	values := make(map[*network.Node]bool, len(topo))
	faninVals := make([]bool, 16)

	evalNet := func(m int, force *bool) []bool {
		for _, x := range topo {
			switch {
			case x.Kind == network.Input:
				idx := sort.Search(len(pis), func(i int) bool { return pis[i].Name >= x.Name })
				values[x] = m&(1<<uint(idx)) != 0
			case x == n && force != nil:
				values[x] = *force
			default:
				if cap(faninVals) < len(x.Fanins) {
					faninVals = make([]bool, len(x.Fanins))
				}
				in := faninVals[:len(x.Fanins)]
				for i, f := range x.Fanins {
					in[i] = values[f]
				}
				values[x] = x.Cover.Eval(in)
			}
		}
		out := make([]bool, len(nw.Outputs))
		for i, o := range nw.Outputs {
			out[i] = values[o]
		}
		return out
	}

	t, f := true, false
	for m := 0; m < 1<<uint(len(pis)); m++ {
		out1 := evalNet(m, &t)
		out0 := evalNet(m, &f)
		pattern := 0
		for i, fn := range n.Fanins {
			if values[fn] { // fanins are below n: unaffected by the forcing
				pattern |= 1 << uint(i)
			}
		}
		sensitive := false
		for i := range out0 {
			if out0[i] != out1[i] {
				sensitive = true
				break
			}
		}
		if sensitive {
			state[pattern] = careOnly
		} else if state[pattern] == unseen {
			state[pattern] = dcOnly
		}
	}

	dc := truth.New(k)
	hasDC := false
	for p, st := range state {
		if st == unseen || st == dcOnly {
			dc.Set(p, true)
			hasDC = true
		}
	}
	if !hasDC {
		return false
	}
	on := truth.FromCover(n.Cover)
	cover := on.MinimalSOPWithDC(dc)
	if cover.LiteralCount() >= n.Cover.LiteralCount() && len(cover.Cubes) >= len(n.Cover.Cubes) {
		return false
	}
	applyReducedCover(n, cover)
	return true
}

// applyReducedCover installs the cover on the node, dropping fanins it no
// longer mentions and handling constants.
func applyReducedCover(n *network.Node, cover logic.Cover) {
	if cover.IsZero() {
		n.Fanins = nil
		n.Cover = logic.Zero(0)
		return
	}
	if cover.HasUniverse() {
		n.Fanins = nil
		n.Cover = logic.One(0)
		return
	}
	used := cover.Support()
	if len(used) != len(n.Fanins) {
		fanins := make([]*network.Node, len(used))
		remap := make(map[int]int, len(used))
		for i, v := range used {
			fanins[i] = n.Fanins[v]
			remap[v] = i
		}
		reduced := logic.NewCover(len(used))
		for _, c := range cover.Cubes {
			d := logic.NewCube(len(used))
			for v, p := range c {
				if p != logic.DC {
					d[remap[v]] = p
				}
			}
			reduced.AddCube(d)
		}
		n.Fanins = fanins
		cover = reduced
	}
	n.Cover = cover
}
