package opt

import (
	"fmt"

	"tels/internal/logic"
	"tels/internal/network"
)

// TechDecomp rebuilds the network as simple gates — AND, OR, inverters and
// buffers — with every gate's fanin bounded by maxFanin (≥ 2). Negative
// literals are realized by explicit shared inverter gates, matching the
// way the paper's one-to-one baseline counts inverters as gates (its
// motivational example counts "seven gates ... including the inverter").
// The returned network has the same primary inputs and output names.
func TechDecomp(nw *network.Network, maxFanin int) *network.Network {
	if maxFanin < 2 {
		panic(fmt.Sprintf("opt: TechDecomp fanin restriction %d < 2", maxFanin))
	}
	out := network.New(nw.Name)
	mapping := make(map[*network.Node]*network.Node) // old signal -> new signal
	inverters := make(map[*network.Node]*network.Node)

	for _, in := range nw.Inputs {
		mapping[in] = out.AddInput(in.Name)
	}

	invOf := func(sig *network.Node) *network.Node {
		if inv, ok := inverters[sig]; ok {
			return inv
		}
		inv := out.AddNode(out.FreshName(sig.Name+"_n"), []*network.Node{sig},
			logic.MustCover("0"))
		inverters[sig] = inv
		return inv
	}

	andTree := func(base, finalName string, ins []*network.Node) *network.Node {
		return buildTree(out, base+"_a", finalName, ins, maxFanin, andCover)
	}
	orTree := func(base, finalName string, ins []*network.Node) *network.Node {
		return buildTree(out, base+"_o", finalName, ins, maxFanin, orCover)
	}

	order, err := nw.TopoSort()
	if err != nil {
		panic(err)
	}
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		if isC, v := nodeConst(n); isC {
			cover := logic.Zero(0)
			if v {
				cover = logic.One(0)
			}
			mapping[n] = out.AddNode(out.FreshName(n.Name), nil, cover)
			continue
		}
		// One signal per cube: an AND tree over its (possibly inverted)
		// literals; then an OR tree over the cubes.
		var cubeSignals []*network.Node
		for ci, cube := range n.Cover.Cubes {
			var ins []*network.Node
			for i, p := range cube {
				sig := mapping[n.Fanins[i]]
				switch p {
				case logic.Pos:
					ins = append(ins, sig)
				case logic.Neg:
					ins = append(ins, invOf(sig))
				}
			}
			switch len(ins) {
			case 0:
				// Universal cube: constant 1.
				cubeSignals = append(cubeSignals,
					out.AddNode(out.FreshName(fmt.Sprintf("%s_c%d", n.Name, ci)), nil, logic.One(0)))
				continue
			case 1:
				cubeSignals = append(cubeSignals, ins[0])
				continue
			}
			finalName := ""
			if len(n.Cover.Cubes) == 1 {
				finalName = n.Name // single-cube node: the AND root takes its name
			}
			cubeSignals = append(cubeSignals, andTree(fmt.Sprintf("%s_c%d", n.Name, ci), finalName, ins))
		}
		var result *network.Node
		if len(cubeSignals) == 1 {
			result = cubeSignals[0]
		} else {
			result = orTree(n.Name, n.Name, cubeSignals)
		}
		mapping[n] = result
	}

	// Outputs keep their names: if the final signal already has the right
	// name it is used directly, otherwise a named buffer is added.
	for _, o := range nw.Outputs {
		sig := mapping[o]
		if sig.Name != o.Name && out.Node(o.Name) == nil {
			sig = out.AddNode(o.Name, []*network.Node{sig}, logic.MustCover("1"))
		}
		out.MarkOutput(sig)
	}
	out.RemoveDangling()
	return out
}

func andCover(n int) logic.Cover {
	c := logic.NewCube(n)
	for i := range c {
		c[i] = logic.Pos
	}
	cv := logic.NewCover(n)
	cv.AddCube(c)
	return cv
}

func orCover(n int) logic.Cover {
	cv := logic.NewCover(n)
	for i := 0; i < n; i++ {
		c := logic.NewCube(n)
		c[i] = logic.Pos
		cv.AddCube(c)
	}
	return cv
}

// buildTree reduces ins to one signal with gates of fanin ≤ maxFanin. The
// root gate is named finalName when that name is free (so decomposed nodes
// keep their original names and no output buffers are needed).
func buildTree(out *network.Network, base, finalName string, ins []*network.Node,
	maxFanin int, coverFor func(int) logic.Cover) *network.Node {
	level := ins
	serial := 0
	for len(level) > 1 {
		var next []*network.Node
		for i := 0; i < len(level); i += maxFanin {
			end := i + maxFanin
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			name := ""
			if i == 0 && end == len(level) && finalName != "" && out.Node(finalName) == nil {
				name = finalName // root of the tree
			} else {
				name = out.FreshName(fmt.Sprintf("%s%d", base, serial))
				serial++
			}
			g := out.AddNode(name, group, coverFor(len(group)))
			next = append(next, g)
		}
		level = next
	}
	return level[0]
}

// DecomposeLarge splits any node whose fanin count exceeds maxFanin into a
// tree of smaller nodes, leaving compliant nodes untouched. Used as a
// TELS pre-pass so collapsed functions stay within the truth-table engine.
// Returns the number of nodes decomposed.
func DecomposeLarge(nw *network.Network, maxFanin int) int {
	if maxFanin < 2 {
		panic("opt: DecomposeLarge needs maxFanin >= 2")
	}
	changed := 0
	for {
		var victim *network.Node
		for _, n := range nw.InternalNodes() {
			if len(n.Fanins) > maxFanin {
				victim = n
				break
			}
		}
		if victim == nil {
			return changed
		}
		decomposeNode(nw, victim, maxFanin)
		changed++
	}
}

// decomposeNode rewrites n as an OR of cube-AND subnodes, splitting wide
// cubes and wide ORs into trees. Negative literals stay as cover phases
// (no explicit inverters here, unlike TechDecomp).
func decomposeNode(nw *network.Network, n *network.Node, maxFanin int) {
	type litRef struct {
		node  *network.Node
		phase logic.Phase
	}
	cubeAnd := func(base string, lits []litRef) *network.Node {
		level := lits
		serial := 0
		for len(level) > maxFanin {
			var next []litRef
			for i := 0; i < len(level); i += maxFanin {
				end := i + maxFanin
				if end > len(level) {
					end = len(level)
				}
				group := level[i:end]
				if len(group) == 1 {
					next = append(next, group[0])
					continue
				}
				fanins := make([]*network.Node, len(group))
				cube := logic.NewCube(len(group))
				for k, lr := range group {
					fanins[k] = lr.node
					cube[k] = lr.phase
				}
				cv := logic.NewCover(len(group))
				cv.AddCube(cube)
				g := nw.AddNode(nw.FreshName(fmt.Sprintf("%s_d%d", base, serial)), fanins, cv)
				serial++
				next = append(next, litRef{g, logic.Pos})
			}
			level = next
		}
		fanins := make([]*network.Node, len(level))
		cube := logic.NewCube(len(level))
		for k, lr := range level {
			fanins[k] = lr.node
			cube[k] = lr.phase
		}
		cv := logic.NewCover(len(level))
		cv.AddCube(cube)
		return nw.AddNode(nw.FreshName(base+"_dc"), fanins, cv)
	}

	var cubeSignals []litRef
	for ci, cube := range n.Cover.Cubes {
		var lits []litRef
		for i, p := range cube {
			if p != logic.DC {
				lits = append(lits, litRef{n.Fanins[i], p})
			}
		}
		if len(lits) == 0 {
			// Universal cube: the node is constant 1.
			n.Fanins = nil
			n.Cover = logic.One(0)
			return
		}
		if len(lits) == 1 {
			cubeSignals = append(cubeSignals, lits[0])
			continue
		}
		g := cubeAnd(fmt.Sprintf("%s_k%d", n.Name, ci), lits)
		cubeSignals = append(cubeSignals, litRef{g, logic.Pos})
	}
	if len(cubeSignals) == 0 {
		n.Fanins = nil
		n.Cover = logic.Zero(0)
		return
	}
	// OR the cube signals in trees of fanin ≤ maxFanin, rewriting n itself
	// as the final OR (or single cube).
	level := cubeSignals
	serial := 0
	for len(level) > maxFanin {
		var next []litRef
		for i := 0; i < len(level); i += maxFanin {
			end := i + maxFanin
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			fanins := make([]*network.Node, len(group))
			cv := logic.NewCover(len(group))
			for k, lr := range group {
				fanins[k] = lr.node
				c := logic.NewCube(len(group))
				c[k] = lr.phase
				cv.AddCube(c)
			}
			g := nw.AddNode(nw.FreshName(fmt.Sprintf("%s_or%d", n.Name, serial)), fanins, cv)
			serial++
			next = append(next, litRef{g, logic.Pos})
		}
		level = next
	}
	fanins := make([]*network.Node, len(level))
	cv := logic.NewCover(len(level))
	for k, lr := range level {
		fanins[k] = lr.node
		c := logic.NewCube(len(level))
		c[k] = lr.phase
		cv.AddCube(c)
	}
	n.Fanins = fanins
	n.Cover = cv
	mergeDuplicateFanins(n)
}
