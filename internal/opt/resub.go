package opt

import (
	"tels/internal/algebra"
	"tels/internal/network"
)

// Resub performs algebraic resubstitution, the SIS resub pass: each
// node's cover is divided by every other existing node's function, and
// when the division saves literals the node is rewritten to reuse that
// node as a divisor. Unlike Extract, no new nodes are created — existing
// shared logic is simply rediscovered. Returns the number of rewrites.
func Resub(nw *network.Network) int {
	rewrites := 0
	for pass := 0; pass < 4; pass++ {
		changed := 0
		space := newSignalSpace(nw)
		internals := nw.InternalNodes()
		order, err := nw.TopoSort()
		if err != nil {
			panic(err)
		}
		topoIdx := make(map[*network.Node]int, len(order))
		for i, n := range order {
			topoIdx[n] = i
		}
		exprs := make(map[*network.Node]algebra.Expr, len(internals))
		for _, n := range internals {
			exprs[n] = space.exprOf(n)
		}
		for _, n := range internals {
			best := 0
			var bestQ, bestR algebra.Expr
			var bestDiv *network.Node
			e := exprs[n]
			if len(e) < 2 {
				continue
			}
			for _, d := range internals {
				if d == n || len(exprs[d]) < 2 {
					continue
				}
				// Using d as a fanin of n adds the edge n→d; any path from
				// n to d would close a cycle, and topological precedence of
				// d rules that out.
				if topoIdx[d] >= topoIdx[n] {
					continue
				}
				q, r := algebra.WeakDiv(e, exprs[d])
				if len(q) == 0 {
					continue
				}
				after := q.Literals() + len(q) + r.Literals()
				if save := e.Literals() - after; save > best {
					best, bestQ, bestR, bestDiv = save, q, r, d
				}
			}
			if bestDiv == nil {
				continue
			}
			rewriteWithDivisor(space, n, bestQ, bestR, bestDiv)
			exprs[n] = space.exprOf(n)
			changed++
			rewrites++
		}
		nw.RemoveDangling()
		if changed == 0 {
			break
		}
	}
	return rewrites
}
