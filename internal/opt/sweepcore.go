package opt

import (
	"tels/internal/logic"
	"tels/internal/netcore"
)

// Arena-native ports of the structural cleanup passes. Each *Core pass is
// decision-identical to its pointer-network counterpart (same iteration
// order, same predicates, same rewrites), so a network pushed through
// FromNetwork → pass → ToNetwork is byte-identical to running the legacy
// pass — the whole-corpus golden gate in internal/expt enforces this.
// What changes is the representation: covers are read from the phase slab
// without chasing pointers, fanout counts are maintained incrementally
// instead of recounted per round, and window truth tables come from the
// word-parallel NetLocalTT.

// netConstCore mirrors nodeConst on the slab: an internal net whose cover
// is syntactically constant (no cubes, or any universal cube).
func netConstCore(nw *netcore.Network, n netcore.Net) (isConst, value bool) {
	if nw.NetKind(n) != netcore.NetFunc {
		return false, false
	}
	phases, nCubes, width := nw.NetCubes(n)
	if nCubes == 0 {
		return true, false
	}
	for c := 0; c < nCubes; c++ {
		universal := true
		for i := 0; i < width; i++ {
			if phases[c*width+i] != logic.DC {
				universal = false
				break
			}
		}
		if universal {
			return true, true
		}
	}
	return false, false
}

// netWireCore mirrors nodeWire: a single-literal function of a single
// fanin — buffer (Pos) or inverter (Neg).
func netWireCore(nw *netcore.Network, n netcore.Net) (wire bool, phase logic.Phase) {
	if nw.NetKind(n) != netcore.NetFunc {
		return false, logic.DC
	}
	phases, nCubes, width := nw.NetCubes(n)
	if width != 1 || nCubes != 1 {
		return false, logic.DC
	}
	p := phases[0]
	if p == logic.DC {
		return false, logic.DC // constant 1, handled by netConstCore
	}
	return true, p
}

// mergeDuplicateFaninsCore folds repeated fanin entries into a single
// column, dropping cubes that require contradictory phases.
func mergeDuplicateFaninsCore(fanins *[]netcore.Net, cov *logic.Cover) bool {
	seen := make(map[netcore.Net]int)
	dup := false
	for _, f := range *fanins {
		if _, ok := seen[f]; ok {
			dup = true
			break
		}
		seen[f] = 1
	}
	if !dup {
		return false
	}
	var merged []netcore.Net
	index := make(map[netcore.Net]int)
	for _, f := range *fanins {
		if _, ok := index[f]; !ok {
			index[f] = len(merged)
			merged = append(merged, f)
		}
	}
	out := logic.NewCover(len(merged))
nextCube:
	for _, c := range cov.Cubes {
		d := logic.NewCube(len(merged))
		for i, p := range c {
			if p == logic.DC {
				continue
			}
			j := index[(*fanins)[i]]
			if d[j] != logic.DC && d[j] != p {
				continue nextCube // x * !x
			}
			d[j] = p
		}
		out.AddCube(d)
	}
	*fanins = merged
	*cov = out
	return true
}

// SweepCore is the arena port of Sweep: duplicate fanins merged, constant
// and wire fanins absorbed, covers SCC-normalized, dangling nets removed.
func SweepCore(nw *netcore.Network) int {
	for {
		changed := false
		order, err := nw.TopoNets()
		if err != nil {
			panic(err)
		}
		for _, n := range order {
			if nw.NetKind(n) != netcore.NetFunc {
				continue
			}
			fanins := append([]netcore.Net(nil), nw.NetFanins(n)...)
			cov := nw.NetCover(n)
			dirty := false
			if mergeDuplicateFaninsCore(&fanins, &cov) {
				changed, dirty = true, true
			}
			for i := 0; i < len(fanins); {
				f := fanins[i]
				if isC, v := netConstCore(nw, f); isC {
					ph := logic.Neg
					if v {
						ph = logic.Pos
					}
					cov = removePosition(cov.Cofactor(i, ph), i)
					fanins = append(fanins[:i], fanins[i+1:]...)
					changed, dirty = true, true
					continue
				}
				if wire, ph := netWireCore(nw, f); wire {
					// Rewire through the buffer/inverter, flipping the
					// column phase for an inverter.
					fanins[i] = nw.NetFanins(f)[0]
					if ph == logic.Neg {
						for _, c := range cov.Cubes {
							switch c[i] {
							case logic.Pos:
								c[i] = logic.Neg
							case logic.Neg:
								c[i] = logic.Pos
							}
						}
					}
					changed, dirty = true, true
					mergeDuplicateFaninsCore(&fanins, &cov)
					if i >= len(fanins) {
						break
					}
					continue
				}
				i++
			}
			scc := cov.SCC()
			if len(scc.Cubes) != len(cov.Cubes) {
				cov = scc
				changed, dirty = true, true
			}
			if dirty {
				nw.SetFunction(n, fanins, cov)
			}
		}
		removed := nw.RemoveDangling()
		if !changed && removed == 0 {
			return 0
		}
		if !changed {
			return removed
		}
	}
}
