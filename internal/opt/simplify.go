package opt

import (
	"tels/internal/logic"
	"tels/internal/network"
	"tels/internal/truth"
)

// SimplifyMaxVars bounds the fanin count for exact node simplification;
// larger nodes are left untouched (their covers only shrink via SCC in
// Sweep).
const SimplifyMaxVars = 10

// SimplifyNodes replaces each node's cover with an irredundant prime cover
// of its local function and drops fanins the function does not depend on.
// It is the two-level-minimization step of the script pipelines (espresso
// without external don't-cares). Returns the number of nodes changed.
func SimplifyNodes(nw *network.Network) int {
	changed := 0
	for _, n := range nw.InternalNodes() {
		if len(n.Fanins) > SimplifyMaxVars {
			// Too wide for the exact truth-table route: fall back to
			// cover-based espresso-style minimization.
			if simplifyWide(n) {
				changed++
			}
			continue
		}
		tt := truth.FromCover(n.Cover)
		if isConst, v := tt.IsConst(); isConst {
			if len(n.Fanins) == 0 {
				continue
			}
			n.Fanins = nil
			if v {
				n.Cover = logic.One(0)
			} else {
				n.Cover = logic.Zero(0)
			}
			changed++
			continue
		}
		sup := tt.Support()
		reduced := tt
		fanins := n.Fanins
		if len(sup) != len(n.Fanins) {
			reduced = tt.Project(sup)
			fanins = make([]*network.Node, len(sup))
			for i, v := range sup {
				fanins[i] = n.Fanins[v]
			}
		}
		cover := reduced.MinimalSOP()
		if len(fanins) != len(n.Fanins) || cover.LiteralCount() < n.Cover.LiteralCount() ||
			len(cover.Cubes) < len(n.Cover.Cubes) {
			n.Fanins = fanins
			n.Cover = cover
			changed++
		}
	}
	if changed > 0 {
		nw.RemoveDangling()
	}
	return changed
}

// simplifyWide minimizes a wide node with the cover-based espresso-style
// pass and drops fanins the minimized cover no longer mentions.
func simplifyWide(n *network.Node) bool {
	cover := n.Cover.Minimize()
	if cover.LiteralCount() >= n.Cover.LiteralCount() && len(cover.Cubes) >= len(n.Cover.Cubes) {
		return false
	}
	sup := cover.Support()
	if len(sup) != len(n.Fanins) {
		fanins := make([]*network.Node, len(sup))
		keep := make(map[int]int, len(sup))
		for i, v := range sup {
			fanins[i] = n.Fanins[v]
			keep[v] = i
		}
		reduced := logic.NewCover(len(sup))
		for _, c := range cover.Cubes {
			d := logic.NewCube(len(sup))
			for v, p := range c {
				if p != logic.DC {
					d[keep[v]] = p
				}
			}
			reduced.AddCube(d)
		}
		n.Fanins = fanins
		cover = reduced
	}
	n.Cover = cover
	return true
}

// EliminateMaxSupport bounds the combined support when collapsing a node
// into a fanout during Eliminate.
const EliminateMaxSupport = 10

// Eliminate collapses low-value nodes into their fanouts, mirroring the
// SIS eliminate command. A node's value is the literal-count change its
// elimination would cause; nodes with value at most threshold are
// collapsed. Output nodes are kept. Each pass builds a consumer index
// once, collapses every qualifying node whose neighbourhood has not been
// touched this pass, and repeats to a fixpoint. Returns the number of
// nodes eliminated.
func Eliminate(nw *network.Network, threshold int) int {
	eliminated := 0
	const maxPasses = 40
	for pass := 0; pass < maxPasses; pass++ {
		outputs := make(map[*network.Node]bool, len(nw.Outputs))
		for _, o := range nw.Outputs {
			outputs[o] = true
		}
		internals := nw.InternalNodes()
		consumers := make(map[*network.Node][]*network.Node)
		for _, m := range internals {
			seen := map[*network.Node]bool{}
			for _, f := range m.Fanins {
				if f.Kind == network.Internal && !seen[f] {
					seen[f] = true
					consumers[f] = append(consumers[f], m)
				}
			}
		}
		dirty := make(map[*network.Node]bool)
		changed := 0
		for _, n := range internals {
			if outputs[n] || dirty[n] || len(n.Fanins) == 0 {
				continue
			}
			cons := consumers[n]
			if len(cons) == 0 {
				continue
			}
			refs := 0
			collapsible := true
			for _, m := range cons {
				if dirty[m] {
					collapsible = false
					break
				}
				if combinedSupportSize(m, n) > EliminateMaxSupport {
					collapsible = false
					break
				}
				for i, f := range m.Fanins {
					if f != n {
						continue
					}
					for _, c := range m.Cover.Cubes {
						if c[i] != logic.DC {
							refs++
						}
					}
				}
			}
			if !collapsible || refs == 0 {
				continue
			}
			L := n.Cover.LiteralCount()
			if refs*L-L-refs > threshold {
				continue
			}
			ok := true
			for _, m := range cons {
				if !CollapseFanin(nw, m, n) {
					ok = false
					break
				}
			}
			if !ok {
				// Partially collapsed consumers stay functionally correct
				// (CollapseFanin is exact); mark the region dirty and move on.
				dirty[n] = true
				for _, m := range cons {
					dirty[m] = true
				}
				continue
			}
			dirty[n] = true
			for _, m := range cons {
				dirty[m] = true
			}
			changed++
			eliminated++
		}
		nw.RemoveDangling()
		if changed == 0 {
			return eliminated
		}
	}
	return eliminated
}

func combinedSupportSize(m, n *network.Node) int {
	set := make(map[*network.Node]bool)
	for _, f := range m.Fanins {
		if f != n {
			set[f] = true
		}
	}
	for _, f := range n.Fanins {
		set[f] = true
	}
	return len(set)
}

// CollapseFanin rewrites node m with fanin n substituted by n's function.
// Both node functions are combined exactly via truth tables; m's new
// support is its remaining fanins plus n's fanins. Reports success
// (failure means the combined support exceeds EliminateMaxSupport).
func CollapseFanin(nw *network.Network, m, n *network.Node) bool {
	var support []*network.Node
	seen := make(map[*network.Node]bool)
	for _, f := range m.Fanins {
		if f == n {
			continue
		}
		if !seen[f] {
			seen[f] = true
			support = append(support, f)
		}
	}
	for _, f := range n.Fanins {
		if !seen[f] {
			seen[f] = true
			support = append(support, f)
		}
	}
	if len(support) > EliminateMaxSupport {
		return false
	}
	tt, err := nw.LocalFunction(m, support)
	if err != nil {
		return false
	}
	sup := tt.Support()
	reduced := tt
	fanins := support
	if len(sup) != len(support) {
		reduced = tt.Project(sup)
		fanins = make([]*network.Node, len(sup))
		for i, v := range sup {
			fanins[i] = support[v]
		}
	}
	m.Fanins = fanins
	m.Cover = reduced.MinimalSOP()
	if isConst, v := reduced.IsConst(); isConst {
		m.Fanins = nil
		if v {
			m.Cover = logic.One(0)
		} else {
			m.Cover = logic.Zero(0)
		}
	}
	return true
}
