package opt

import (
	"tels/internal/netcore"
	"tels/internal/network"
)

// The script pipelines run the structural passes (sweep, simplify,
// eliminate, resub, don't-care simplify) on the arena-backed netcore
// representation — decision-identical ports of the pointer passes, minus
// the per-round recounting and pointer chasing — and cross back to the
// pointer network only for the passes that create new nodes (Extract) or
// use observability don't-cares (SimplifyFull). The initial Clone both
// protects the caller's network and normalizes creation order exactly as
// the legacy scripts did.

// Algebraic runs the equivalent of SIS's script.algebraic on a copy of the
// network: structural cleanup, exact node simplification, a round of
// low-value elimination to expose larger divisors, greedy algebraic
// extraction, and a final cleanup. The result is the algebraically-
// factored multi-level network that threshold synthesis consumes.
func Algebraic(nw *network.Network) *network.Network {
	out := nw.Clone()
	cw := netcore.FromNetwork(out)
	SweepCore(cw)
	SimplifyNodesCore(cw)
	EliminateCore(cw, 0)
	SimplifyNodesCore(cw)
	out = cw.ToNetwork()
	Extract(out)
	cw = netcore.FromNetwork(out)
	ResubCore(cw)
	SweepCore(cw)
	SimplifyNodesCore(cw)
	SweepCore(cw)
	return cw.ToNetwork()
}

// Boolean runs the equivalent of SIS's script.boolean: like Algebraic but
// with a more aggressive eliminate/simplify schedule, approximating the
// Boolean (don't-care based) simplification of the original script with
// repeated exact local minimization. Like the SIS script, it finishes
// with an eliminate pass that re-forms medium-sized nodes — two-level
// minimization works better on them, and it is this final shape that
// makes the one-to-one baseline sensitive to the fanin restriction
// (Fig. 10). The paper derives its one-to-one baseline from this script.
func Boolean(nw *network.Network) *network.Network {
	out := nw.Clone()
	cw := netcore.FromNetwork(out)
	SweepCore(cw)
	SimplifyNodesCore(cw)
	EliminateCore(cw, 2)
	SimplifyNodesCore(cw)
	out = cw.ToNetwork()
	Extract(out)
	cw = netcore.FromNetwork(out)
	SimplifyNodesCore(cw)
	EliminateCore(cw, 0)
	SimplifyNodesCore(cw)
	out = cw.ToNetwork()
	Extract(out)
	cw = netcore.FromNetwork(out)
	ResubCore(cw)
	out = cw.ToNetwork()
	// The don’t-care ingredient of script.boolean (full_simplify): after
	// extraction the cones share logic, so satisfiability and observability
	// don’t-cares appear.
	SimplifyFull(out)
	cw = netcore.FromNetwork(out)
	SweepCore(cw)
	EliminateCore(cw, 25)
	SimplifyNodesCore(cw)
	SweepCore(cw)
	return cw.ToNetwork()
}
