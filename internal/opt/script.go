package opt

import "tels/internal/network"

// Algebraic runs the equivalent of SIS's script.algebraic on a copy of the
// network: structural cleanup, exact node simplification, a round of
// low-value elimination to expose larger divisors, greedy algebraic
// extraction, and a final cleanup. The result is the algebraically-
// factored multi-level network that threshold synthesis consumes.
func Algebraic(nw *network.Network) *network.Network {
	out := nw.Clone()
	Sweep(out)
	SimplifyNodes(out)
	Eliminate(out, 0)
	SimplifyNodes(out)
	Extract(out)
	Resub(out)
	Sweep(out)
	SimplifyNodes(out)
	Sweep(out)
	return out
}

// Boolean runs the equivalent of SIS's script.boolean: like Algebraic but
// with a more aggressive eliminate/simplify schedule, approximating the
// Boolean (don't-care based) simplification of the original script with
// repeated exact local minimization. Like the SIS script, it finishes
// with an eliminate pass that re-forms medium-sized nodes — two-level
// minimization works better on them, and it is this final shape that
// makes the one-to-one baseline sensitive to the fanin restriction
// (Fig. 10). The paper derives its one-to-one baseline from this script.
func Boolean(nw *network.Network) *network.Network {
	out := nw.Clone()
	Sweep(out)
	SimplifyNodes(out)
	Eliminate(out, 2)
	SimplifyNodes(out)
	Extract(out)
	SimplifyNodes(out)
	Eliminate(out, 0)
	SimplifyNodes(out)
	Extract(out)
	Resub(out)
	// The don’t-care ingredient of script.boolean (full_simplify): after
	// extraction the cones share logic, so satisfiability and observability
	// don’t-cares appear.
	SimplifyFull(out)
	Sweep(out)
	Eliminate(out, 25)
	SimplifyNodes(out)
	Sweep(out)
	return out
}
