package opt

import (
	"sort"

	"tels/internal/algebra"
	"tels/internal/logic"
	"tels/internal/netcore"
)

// signalSpaceCore maps nets to contiguous variable indices — the same
// indices (creation-order positions) the pointer signalSpace assigns, so
// algebraic division sees identical literals.
type signalSpaceCore struct {
	nw    *netcore.Network
	index map[netcore.Net]int
	nets  []netcore.Net
}

func newSignalSpaceCore(nw *netcore.Network) *signalSpaceCore {
	s := &signalSpaceCore{nw: nw, index: make(map[netcore.Net]int)}
	for _, n := range nw.Nets() {
		s.index[n] = len(s.nets)
		s.nets = append(s.nets, n)
	}
	return s
}

// exprOf re-expresses a net's cover in the global space.
func (s *signalSpaceCore) exprOf(m netcore.Net) algebra.Expr {
	fanins := s.nw.NetFanins(m)
	phases, nCubes, width := s.nw.NetCubes(m)
	var e algebra.Expr
	for c := 0; c < nCubes; c++ {
		var cube algebra.Cube
		for i := 0; i < width; i++ {
			p := phases[c*width+i]
			if p == logic.DC {
				continue
			}
			cube = append(cube, algebra.MakeLit(s.index[fanins[i]], p))
		}
		sort.Slice(cube, func(a, b int) bool { return cube[a] < cube[b] })
		e = append(e, cube)
	}
	return e
}

// rewriteWithDivisorCore rewrites net n as q*div + r, mirroring
// rewriteWithDivisor (including the final duplicate-fanin merge).
func (s *signalSpaceCore) rewriteWithDivisorCore(n netcore.Net, q, r algebra.Expr, div netcore.Net) {
	varSet := make(map[int]bool)
	for _, e := range []algebra.Expr{q, r} {
		for _, v := range e.Vars() {
			varSet[v] = true
		}
	}
	vars := make([]int, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	pos := make(map[int]int, len(vars))
	fanins := make([]netcore.Net, 0, len(vars)+1)
	for i, v := range vars {
		pos[v] = i
		fanins = append(fanins, s.nets[v])
	}
	divPos := len(fanins)
	fanins = append(fanins, div)

	cover := logic.NewCover(len(fanins))
	for _, qc := range q {
		c := logic.NewCube(len(fanins))
		for _, l := range qc {
			c[pos[l.Var()]] = l.Phase()
		}
		c[divPos] = logic.Pos
		cover.AddCube(c)
	}
	for _, rc := range r {
		c := logic.NewCube(len(fanins))
		for _, l := range rc {
			c[pos[l.Var()]] = l.Phase()
		}
		cover.AddCube(c)
	}
	mergeDuplicateFaninsCore(&fanins, &cover)
	s.nw.SetFunction(n, fanins, cover)
}

// ResubCore is the arena port of Resub: algebraic resubstitution against
// existing nets, no new nodes created.
func ResubCore(nw *netcore.Network) int {
	rewrites := 0
	for pass := 0; pass < 4; pass++ {
		changed := 0
		space := newSignalSpaceCore(nw)
		internals := nw.InternalNets()
		order, err := nw.TopoNets()
		if err != nil {
			panic(err)
		}
		topoIdx := make(map[netcore.Net]int, len(order))
		for i, n := range order {
			topoIdx[n] = i
		}
		exprs := make(map[netcore.Net]algebra.Expr, len(internals))
		for _, n := range internals {
			exprs[n] = space.exprOf(n)
		}
		for _, n := range internals {
			best := 0
			var bestQ, bestR algebra.Expr
			bestDiv := netcore.InvalidNet
			e := exprs[n]
			if len(e) < 2 {
				continue
			}
			for _, d := range internals {
				if d == n || len(exprs[d]) < 2 {
					continue
				}
				// Using d as a fanin of n adds the edge n→d; topological
				// precedence of d rules out a cycle.
				if topoIdx[d] >= topoIdx[n] {
					continue
				}
				q, r := algebra.WeakDiv(e, exprs[d])
				if len(q) == 0 {
					continue
				}
				after := q.Literals() + len(q) + r.Literals()
				if save := e.Literals() - after; save > best {
					best, bestQ, bestR, bestDiv = save, q, r, d
				}
			}
			if bestDiv == netcore.InvalidNet {
				continue
			}
			space.rewriteWithDivisorCore(n, bestQ, bestR, bestDiv)
			exprs[n] = space.exprOf(n)
			changed++
			rewrites++
		}
		nw.RemoveDangling()
		if changed == 0 {
			break
		}
	}
	return rewrites
}
