package opt

import (
	"math/rand"
	"testing"

	"tels/internal/logic"
	"tels/internal/network"
)

// equivalentOnAll checks two networks with identical input/output names
// agree on every input vector (inputs ≤ 16) or a random sample otherwise.
func equivalentOnAll(t *testing.T, a, b *network.Network) {
	t.Helper()
	if len(a.Inputs) != len(b.Inputs) {
		t.Fatalf("input counts differ: %d vs %d", len(a.Inputs), len(b.Inputs))
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("output counts differ: %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	n := len(a.Inputs)
	vectors := 1 << uint(n)
	exhaustive := n <= 14
	if !exhaustive {
		vectors = 2000
	}
	rng := rand.New(rand.NewSource(7))
	for v := 0; v < vectors; v++ {
		in := make(map[string]bool, n)
		for i, node := range a.Inputs {
			if exhaustive {
				in[node.Name] = v&(1<<uint(i)) != 0
			} else {
				in[node.Name] = rng.Intn(2) == 1
			}
		}
		av, err := a.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("networks differ on vector %d output %s: %v vs %v",
					v, a.Outputs[i].Name, av[i], bv[i])
			}
		}
	}
}

// fig2a builds the paper's motivational network.
func fig2a() *network.Network {
	b := network.NewBuilder("fig2a")
	var x [8]*network.Node
	for i := 1; i <= 7; i++ {
		x[i] = b.Input("x" + string(rune('0'+i)))
	}
	n4 := b.And("n4", x[1], x[2], x[3])
	inv := b.Not("inv", x[1])
	n5 := b.And("n5", inv, x[4])
	n3 := b.Or("n3", n4, n5)
	n1 := b.And("n1", n3, x[5])
	n2 := b.And("n2", x[6], x[7])
	f := b.Or("f", n1, n2)
	b.Output(f)
	return b.Net
}

func TestSweepBuffersAndConstants(t *testing.T) {
	b := network.NewBuilder("sw")
	a := b.Input("a")
	c := b.Input("c")
	buf := b.Buf("buf", a)
	inv := b.Not("inv", c)
	one := b.Net.AddNode("one", nil, logic.One(0))
	g := b.And("g", buf, inv, one)
	y := b.Or("y", g, buf)
	b.Output(y)
	ref := b.Net.Clone()

	Sweep(b.Net)
	if b.Net.Node("buf") != nil || b.Net.Node("inv") != nil || b.Net.Node("one") != nil {
		t.Fatalf("sweep left wires/constants: %v", b.Net.SortedNodeNames())
	}
	equivalentOnAll(t, ref, b.Net)
}

func TestSweepConstantZeroFanin(t *testing.T) {
	b := network.NewBuilder("sw0")
	a := b.Input("a")
	zero := b.Net.AddNode("zero", nil, logic.Zero(0))
	y := b.Or("y", a, zero)
	b.Output(y)
	ref := b.Net.Clone()
	Sweep(b.Net)
	if b.Net.Node("zero") != nil {
		t.Fatal("constant 0 not swept")
	}
	equivalentOnAll(t, ref, b.Net)
}

func TestSweepDuplicateFanins(t *testing.T) {
	nw := network.New("dup")
	a := nw.AddInput("a")
	c := nw.AddInput("c")
	// y = a*a*c + a*!a  -> a*c
	y := nw.AddNode("y", []*network.Node{a, a, c, a}, logic.MustCover("11-0", "1-1-"))
	nw.MarkOutput(y)
	Sweep(nw)
	if len(y.Fanins) != 2 {
		t.Fatalf("fanins = %d, want 2", len(y.Fanins))
	}
	vals, _ := nw.EvalOutputs(map[string]bool{"a": true, "c": true})
	if !vals[0] {
		t.Fatal("y(1,1) should be 1")
	}
	vals, _ = nw.EvalOutputs(map[string]bool{"a": true, "c": false})
	if vals[0] {
		t.Fatal("y(1,0) should be 0")
	}
}

func TestSimplifyNodes(t *testing.T) {
	nw := network.New("simp")
	a := nw.AddInput("a")
	c := nw.AddInput("c")
	// y = a*c + a*!c + a  -> a, dropping fanin c.
	y := nw.AddNode("y", []*network.Node{a, c}, logic.MustCover("11", "10", "1-"))
	nw.MarkOutput(y)
	ref := nw.Clone()
	SimplifyNodes(nw)
	if len(y.Fanins) != 1 || y.Fanins[0] != a {
		t.Fatalf("y fanins = %v", y.Fanins)
	}
	equivalentOnAll(t, ref, nw)
}

func TestSimplifyConstantNode(t *testing.T) {
	nw := network.New("simpc")
	a := nw.AddInput("a")
	// y = a + !a = 1.
	y := nw.AddNode("y", []*network.Node{a}, logic.MustCover("1", "0"))
	nw.MarkOutput(y)
	SimplifyNodes(nw)
	if len(y.Fanins) != 0 || !y.Cover.HasUniverse() {
		t.Fatalf("y not reduced to constant 1: fanins=%v cover=%v", y.Fanins, y.Cover)
	}
}

func TestEliminate(t *testing.T) {
	nw := fig2a()
	ref := nw.Clone()
	n := Eliminate(nw, 0)
	if n == 0 {
		t.Fatal("expected at least one elimination in fig2a")
	}
	equivalentOnAll(t, ref, nw)
}

func TestExtractSharedKernel(t *testing.T) {
	// Two nodes sharing divisor (c+d): y1 = a(c+d), y2 = b(c+d) + e.
	nw := network.New("ext")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	e := nw.AddInput("e")
	y1 := nw.AddNode("y1", []*network.Node{a, c, d}, logic.MustCover("11-", "1-1"))
	y2 := nw.AddNode("y2", []*network.Node{b, c, d, e}, logic.MustCover("11--", "1-1-", "---1"))
	nw.MarkOutput(y1)
	nw.MarkOutput(y2)
	ref := nw.Clone()
	got := Extract(nw)
	if got == 0 {
		t.Fatal("expected extraction of the shared kernel c+d")
	}
	equivalentOnAll(t, ref, nw)
	// The divisor must be shared: some new node fans out to both y1 and y2.
	shared := nw.FanoutNodes()
	if len(shared) == 0 {
		t.Fatalf("no shared node created: %v", nw.SortedNodeNames())
	}
}

func TestExtractPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 30; iter++ {
		nw := randomNetwork(rng, 6, 8)
		ref := nw.Clone()
		Extract(nw)
		equivalentOnAll(t, ref, nw)
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func randomNetwork(rng *rand.Rand, inputs, gates int) *network.Network {
	nw := network.New("rand")
	var signals []*network.Node
	for i := 0; i < inputs; i++ {
		signals = append(signals, nw.AddInput("in"+string(rune('a'+i))))
	}
	for g := 0; g < gates; g++ {
		k := 2 + rng.Intn(3)
		fanins := make([]*network.Node, 0, k)
		used := map[*network.Node]bool{}
		for len(fanins) < k {
			s := signals[rng.Intn(len(signals))]
			if !used[s] {
				used[s] = true
				fanins = append(fanins, s)
			}
		}
		cover := logic.NewCover(k)
		cubes := 1 + rng.Intn(3)
		for c := 0; c < cubes; c++ {
			cube := logic.NewCube(k)
			nonDC := false
			for j := 0; j < k; j++ {
				switch rng.Intn(3) {
				case 0:
					cube[j] = logic.Pos
					nonDC = true
				case 1:
					cube[j] = logic.Neg
					nonDC = true
				}
			}
			if nonDC {
				cover.AddCube(cube)
			}
		}
		if cover.IsZero() {
			cover.AddCube(func() logic.Cube {
				cb := logic.NewCube(k)
				cb[0] = logic.Pos
				return cb
			}())
		}
		n := nw.AddNode(nw.FreshName("g"), fanins, cover)
		signals = append(signals, n)
	}
	// Mark the last few gates as outputs.
	outs := 0
	for i := len(signals) - 1; i >= 0 && outs < 3; i-- {
		if signals[i].Kind == network.Internal {
			nw.MarkOutput(signals[i])
			outs++
		}
	}
	nw.RemoveDangling()
	return nw
}

func TestTechDecompBoundsFanin(t *testing.T) {
	nw := fig2a()
	for _, k := range []int{2, 3, 4} {
		dec := TechDecomp(nw, k)
		for _, n := range dec.InternalNodes() {
			if len(n.Fanins) > k {
				t.Fatalf("k=%d: node %s has %d fanins", k, n.Name, len(n.Fanins))
			}
		}
		equivalentOnAll(t, nw, dec)
	}
}

func TestTechDecompGatesAreSimple(t *testing.T) {
	nw := fig2a()
	dec := TechDecomp(nw, 3)
	for _, n := range dec.InternalNodes() {
		// Every gate must be AND (single cube, all Pos), OR (one Pos per
		// cube), NOT, BUF or constant.
		switch {
		case len(n.Fanins) == 0: // constant
		case len(n.Fanins) == 1: // buf/inv
			if len(n.Cover.Cubes) != 1 || n.Cover.Cubes[0][0] == logic.DC {
				t.Fatalf("node %s is not a wire: %v", n.Name, n.Cover)
			}
		case len(n.Cover.Cubes) == 1: // AND
			for _, p := range n.Cover.Cubes[0] {
				if p != logic.Pos {
					t.Fatalf("AND node %s has non-positive literal: %v", n.Name, n.Cover)
				}
			}
		default: // OR
			for _, cb := range n.Cover.Cubes {
				lits := 0
				for _, p := range cb {
					if p == logic.Pos {
						lits++
					} else if p == logic.Neg {
						t.Fatalf("OR node %s has negative literal: %v", n.Name, n.Cover)
					}
				}
				if lits != 1 {
					t.Fatalf("OR node %s cube has %d literals: %v", n.Name, lits, n.Cover)
				}
			}
		}
	}
}

func TestTechDecompSharesInverters(t *testing.T) {
	nw := network.New("shinv")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	y1 := nw.AddNode("y1", []*network.Node{a, b}, logic.MustCover("01"))
	y2 := nw.AddNode("y2", []*network.Node{a, c}, logic.MustCover("01"))
	nw.MarkOutput(y1)
	nw.MarkOutput(y2)
	dec := TechDecomp(nw, 4)
	inverters := 0
	for _, n := range dec.InternalNodes() {
		if len(n.Fanins) == 1 && len(n.Cover.Cubes) == 1 && n.Cover.Cubes[0][0] == logic.Neg {
			inverters++
		}
	}
	if inverters != 1 {
		t.Fatalf("inverters = %d, want 1 (shared !a)", inverters)
	}
	equivalentOnAll(t, nw, dec)
}

func TestDecomposeLarge(t *testing.T) {
	nw := network.New("big")
	var ins []*network.Node
	for i := 0; i < 9; i++ {
		ins = append(ins, nw.AddInput("i"+string(rune('0'+i))))
	}
	// Wide node: 9-input function with three 3-literal cubes and phases.
	cover := logic.MustCover("111------", "---00----", "------1-1")
	y := nw.AddNode("y", ins, cover)
	nw.MarkOutput(y)
	ref := nw.Clone()
	DecomposeLarge(nw, 4)
	for _, n := range nw.InternalNodes() {
		if len(n.Fanins) > 4 {
			t.Fatalf("node %s still has %d fanins", n.Name, len(n.Fanins))
		}
	}
	equivalentOnAll(t, ref, nw)
}

func TestScriptsPreserveFunction(t *testing.T) {
	nw := fig2a()
	alg := Algebraic(nw)
	equivalentOnAll(t, nw, alg)
	if err := alg.Validate(); err != nil {
		t.Fatal(err)
	}
	boo := Boolean(nw)
	equivalentOnAll(t, nw, boo)
	if err := boo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScriptsOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 15; iter++ {
		nw := randomNetwork(rng, 7, 10)
		alg := Algebraic(nw)
		equivalentOnAll(t, nw, alg)
		boo := Boolean(nw)
		equivalentOnAll(t, nw, boo)
	}
}

func TestAlgebraicReducesLiterals(t *testing.T) {
	// A network with obvious shared structure should shrink.
	nw := network.New("shrink")
	var ins []*network.Node
	for i := 0; i < 6; i++ {
		ins = append(ins, nw.AddInput("x"+string(rune('0'+i))))
	}
	// y1 = x0x2 + x0x3 + x1x2 + x1x3 (= (x0+x1)(x2+x3))
	y1 := nw.AddNode("y1", ins[:4], logic.MustCover("1-1-", "1--1", "-11-", "-1-1"))
	// y2 = x4(x2+x3) shares the kernel x2+x3.
	y2 := nw.AddNode("y2", []*network.Node{ins[2], ins[3], ins[4]}, logic.MustCover("1-1", "-11"))
	nw.MarkOutput(y1)
	nw.MarkOutput(y2)
	alg := Algebraic(nw)
	before := nw.Stats().Literals
	after := alg.Stats().Literals
	if after >= before {
		t.Fatalf("literals %d -> %d, expected reduction", before, after)
	}
	equivalentOnAll(t, nw, alg)
}

func TestSimplifyWideNode(t *testing.T) {
	// A 14-fanin node (beyond the truth-table route) with an absorbable
	// cube pair must still shrink via the cover-based minimizer.
	nw := network.New("wide")
	var ins []*network.Node
	for i := 0; i < 14; i++ {
		ins = append(ins, nw.AddInput("i"+string(rune('a'+i))))
	}
	// y = x0 x1 + x0 x1 !x13 + x2...x12 chain cube (irredundant filler).
	cover := logic.MustCover(
		"11------------",
		"11-----------0",
		"--11111111111-",
	)
	y := nw.AddNode("y", ins, cover)
	nw.MarkOutput(y)
	ref := nw.Clone()
	if changed := SimplifyNodes(nw); changed == 0 {
		t.Fatal("wide node not simplified")
	}
	if got := len(y.Cover.Cubes); got != 2 {
		t.Fatalf("cover has %d cubes, want 2", got)
	}
	if len(y.Fanins) != 13 {
		t.Fatalf("fanins = %d, want 13 (x13 dropped)", len(y.Fanins))
	}
	equivalentOnAll(t, ref, nw)
}

func TestResubReusesExistingNode(t *testing.T) {
	// d = c + e exists; y = a*c + a*e can be rewritten as y = a*d.
	nw := network.New("rs")
	a := nw.AddInput("a")
	c := nw.AddInput("c")
	e := nw.AddInput("e")
	d := nw.AddNode("d", []*network.Node{c, e}, logic.MustCover("1-", "-1"))
	y := nw.AddNode("y", []*network.Node{a, c, e}, logic.MustCover("11-", "1-1"))
	nw.MarkOutput(d)
	nw.MarkOutput(y)
	ref := nw.Clone()
	if n := Resub(nw); n == 0 {
		t.Fatal("expected a resubstitution")
	}
	usesD := false
	for _, f := range y.Fanins {
		if f == d {
			usesD = true
		}
	}
	if !usesD {
		t.Fatalf("y does not reuse d: fanins %v", y.Fanins)
	}
	equivalentOnAll(t, ref, nw)
}

func TestResubMergesDuplicates(t *testing.T) {
	nw := network.New("dup2")
	a := nw.AddInput("a")
	c := nw.AddInput("c")
	d1 := nw.AddNode("d1", []*network.Node{a, c}, logic.MustCover("1-", "-1"))
	d2 := nw.AddNode("d2", []*network.Node{a, c}, logic.MustCover("1-", "-1"))
	nw.MarkOutput(d1)
	nw.MarkOutput(d2)
	ref := nw.Clone()
	Resub(nw)
	// d2 should now be a single-cube function of d1 (a buffer), which
	// Sweep cannot remove because it is an output — but its cover must
	// reference d1.
	if len(d2.Fanins) != 1 || d2.Fanins[0] != d1 {
		t.Fatalf("duplicate not merged: fanins %v", d2.Fanins)
	}
	equivalentOnAll(t, ref, nw)
}

func TestResubPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 25; iter++ {
		nw := randomNetwork(rng, 6, 9)
		ref := nw.Clone()
		Resub(nw)
		equivalentOnAll(t, ref, nw)
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestResubNoCycles(t *testing.T) {
	// A chain where later nodes could divide earlier ones must never
	// create a cycle.
	nw := network.New("chain")
	a := nw.AddInput("a")
	c := nw.AddInput("c")
	e := nw.AddInput("e")
	n1 := nw.AddNode("n1", []*network.Node{a, c}, logic.MustCover("1-", "-1"))
	n2 := nw.AddNode("n2", []*network.Node{n1, e}, logic.MustCover("11"))
	n3 := nw.AddNode("n3", []*network.Node{a, c, e}, logic.MustCover("1-1", "-11"))
	nw.MarkOutput(n2)
	nw.MarkOutput(n3)
	Resub(nw)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyDCUnreachablePatterns(t *testing.T) {
	// y AND-combines x and its inverter's output through separate nodes:
	// the fanin patterns (0,0) and (1,1) are unreachable, so
	// f = a*!b over (p, q) with p = x, q = !x can simplify to a literal.
	nw := network.New("sdc")
	x := nw.AddInput("x")
	p := nw.AddNode("p", []*network.Node{x}, logic.MustCover("1"))
	q := nw.AddNode("q", []*network.Node{x}, logic.MustCover("0"))
	f := nw.AddNode("f", []*network.Node{p, q}, logic.MustCover("10"))
	nw.MarkOutput(p) // keep p and q alive as outputs
	nw.MarkOutput(q)
	nw.MarkOutput(f)
	ref := nw.Clone()
	if n := SimplifyDC(nw); n == 0 {
		t.Fatal("expected a DC simplification")
	}
	if f.Cover.LiteralCount() > 1 {
		t.Fatalf("f not simplified: %v over %d fanins", f.Cover, len(f.Fanins))
	}
	equivalentOnAll(t, ref, nw)
}

func TestSimplifyDCPreservesNetworkFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		nw := randomNetwork(rng, 6, 10)
		ref := nw.Clone()
		SimplifyDC(nw)
		equivalentOnAll(t, ref, nw)
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestSimplifyDCOnBenchmarkShapes(t *testing.T) {
	// The comparator's eq-chain has correlated fanins; SimplifyDC must
	// keep the function intact (improvement is circuit-dependent).
	nw := fig2a()
	ref := nw.Clone()
	SimplifyDC(nw)
	equivalentOnAll(t, ref, nw)
}

func TestSimplifyFullObservability(t *testing.T) {
	// y = (a ∨ b) ∧ a: whenever a=0 the output ignores n = a ∨ b, so n's
	// patterns with a=0 are observability don't-cares and n collapses to
	// the constant 1 (y then sweeps to a buffer of a).
	nw := network.New("odc")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	n := nw.AddNode("n", []*network.Node{a, b}, logic.MustCover("1-", "-1"))
	y := nw.AddNode("y", []*network.Node{n, a}, logic.MustCover("11"))
	nw.MarkOutput(y)
	ref := nw.Clone()
	if c := SimplifyFull(nw); c == 0 {
		t.Fatal("expected an ODC simplification")
	}
	equivalentOnAll(t, ref, nw)
	if len(n.Fanins) != 0 || !n.Cover.HasUniverse() {
		t.Fatalf("n not reduced to constant 1: %v over %d fanins", n.Cover, len(n.Fanins))
	}
}

func TestSimplifyFullPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for iter := 0; iter < 25; iter++ {
		nw := randomNetwork(rng, 6, 9)
		ref := nw.Clone()
		SimplifyFull(nw)
		equivalentOnAll(t, ref, nw)
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestSimplifyFullFallsBackOnWideNetworks(t *testing.T) {
	// 20 inputs exceeds the ODC enumeration limit; the pass must fall
	// back to the SDC-only path without error.
	nw := network.New("widepi")
	var ins []*network.Node
	for i := 0; i < 20; i++ {
		ins = append(ins, nw.AddInput(nameOf(i)))
	}
	n1 := nw.AddNode("n1", ins[:3], logic.MustCover("11-", "--1"))
	y := nw.AddNode("y", []*network.Node{n1, ins[4]}, logic.MustCover("1-", "-1"))
	nw.MarkOutput(y)
	ref := nw.Clone()
	SimplifyFull(nw)
	equivalentOnAll(t, ref, nw)
}

func nameOf(i int) string { return "pi" + string(rune('a'+i)) }
