package opt

import (
	"tels/internal/logic"
	"tels/internal/netcore"
	"tels/internal/truth"
)

// SimplifyDCCore is the arena port of SimplifyDC: each net is minimized
// against the satisfiability don't-cares of its fanin cones, with the
// cone truth tables computed word-parallel over the window.
func SimplifyDCCore(nw *netcore.Network) int {
	changed := 0
	order, err := nw.TopoNets()
	if err != nil {
		panic(err)
	}
	// Transitive-fanin PI supports, computed bottom-up.
	support := make(map[netcore.Net]map[netcore.Net]bool, len(order))
	for _, n := range order {
		if nw.NetKind(n) == netcore.NetInput {
			support[n] = map[netcore.Net]bool{n: true}
			continue
		}
		s := make(map[netcore.Net]bool)
		for _, f := range nw.NetFanins(n) {
			for pi := range support[f] {
				s[pi] = true
			}
		}
		support[n] = s
	}
	for _, n := range order {
		if nw.NetKind(n) != netcore.NetFunc {
			continue
		}
		if k := len(nw.NetFanins(n)); k < 2 || k > SimplifyMaxVars {
			continue
		}
		if simplifyNetDC(nw, n, support[n]) {
			changed++
		}
	}
	if changed > 0 {
		nw.RemoveDangling()
	}
	return changed
}

// simplifyNetDC rewrites one net against the unreachable fanin patterns of
// its cone, mirroring simplifyNodeDC decision for decision.
func simplifyNetDC(nw *netcore.Network, n netcore.Net, piSet map[netcore.Net]bool) bool {
	if len(piSet) > dcMaxConeInputs {
		return false
	}
	pis := make([]netcore.Net, 0, len(piSet))
	for pi := range piSet {
		pis = append(pis, pi)
	}
	// Deterministic order for reproducible results.
	for i := 1; i < len(pis); i++ {
		for j := i; j > 0 && nw.NetName(pis[j-1]) > nw.NetName(pis[j]); j-- {
			pis[j-1], pis[j] = pis[j], pis[j-1]
		}
	}
	fanins := append([]netcore.Net(nil), nw.NetFanins(n)...)
	cones := make([]*truth.Table, len(fanins))
	for i, f := range fanins {
		tt, err := nw.NetLocalTT(f, pis)
		if err != nil {
			return false
		}
		cones[i] = tt
	}
	k := len(fanins)
	reachable := make([]bool, 1<<uint(k))
	seen := 0
	for m := 0; m < 1<<uint(len(pis)); m++ {
		v := 0
		for i, tt := range cones {
			if tt.Get(m) {
				v |= 1 << uint(i)
			}
		}
		if !reachable[v] {
			reachable[v] = true
			seen++
			if seen == len(reachable) {
				return false // every pattern occurs: no don't-cares
			}
		}
	}
	dc := truth.New(k)
	for v, r := range reachable {
		if !r {
			dc.Set(v, true)
		}
	}
	cov := nw.NetCover(n)
	on := truth.FromCover(cov)
	cover := on.MinimalSOPWithDC(dc)
	if cover.LiteralCount() >= cov.LiteralCount() && len(cover.Cubes) >= len(cov.Cubes) {
		return false
	}
	// The don't-cares can reveal the net as constant on all reachable
	// patterns.
	if cover.IsZero() {
		nw.SetFunction(n, nil, logic.Zero(0))
		return true
	}
	if cover.HasUniverse() {
		nw.SetFunction(n, nil, logic.One(0))
		return true
	}
	// Drop fanins the new cover no longer mentions.
	used := cover.Support()
	if len(used) != k {
		nf := make([]netcore.Net, len(used))
		remap := make(map[int]int, len(used))
		for i, v := range used {
			nf[i] = fanins[v]
			remap[v] = i
		}
		reduced := logic.NewCover(len(used))
		for _, c := range cover.Cubes {
			d := logic.NewCube(len(used))
			for v, p := range c {
				if p != logic.DC {
					d[remap[v]] = p
				}
			}
			reduced.AddCube(d)
		}
		nw.SetFunction(n, nf, reduced)
		return true
	}
	nw.SetFunction(n, fanins, cover)
	return true
}
