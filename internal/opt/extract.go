package opt

import (
	"fmt"
	"sort"

	"tels/internal/algebra"
	"tels/internal/logic"
	"tels/internal/network"
)

// Extraction tuning knobs. Kernel enumeration is exponential in the worst
// case; nodes beyond these bounds contribute only cube divisors.
const (
	extractMaxCubesPerNode = 30  // enumerate kernels only for nodes this small
	extractMaxKernelCubes  = 12  // ignore kernels larger than this
	extractMaxIters        = 400 // global greedy iterations
)

// Extract performs greedy algebraic extraction: it repeatedly finds the
// kernel and cube divisors whose reuse across the network saves the most
// literals, creates new nodes for them, and re-expresses every affected
// node through weak division. This is the factorization step that turns a
// flat network into the algebraically-factored multi-level form TELS
// consumes. Divisors that do not touch the same nodes are extracted in one
// round, so large regular networks converge in a few rounds. It returns
// the number of divisors extracted.
func Extract(nw *network.Network) int {
	extracted := 0
	for iter := 0; iter < extractMaxIters; iter++ {
		n := extractRound(nw, extracted)
		if n == 0 {
			break
		}
		extracted += n
	}
	return extracted
}

// signalSpace maps network signals to contiguous variable indices so node
// covers from different nodes can be compared in one algebraic space.
type signalSpace struct {
	index map[*network.Node]int
	nodes []*network.Node
}

func newSignalSpace(nw *network.Network) *signalSpace {
	s := &signalSpace{index: make(map[*network.Node]int)}
	for _, n := range nw.Nodes() {
		s.index[n] = len(s.nodes)
		s.nodes = append(s.nodes, n)
	}
	return s
}

// exprOf re-expresses node m's cover in the global space.
func (s *signalSpace) exprOf(m *network.Node) algebra.Expr {
	var e algebra.Expr
	for _, c := range m.Cover.Cubes {
		var cube algebra.Cube
		for i, p := range c {
			if p == logic.DC {
				continue
			}
			cube = append(cube, algebra.MakeLit(s.index[m.Fanins[i]], p))
		}
		sort.Slice(cube, func(a, b int) bool { return cube[a] < cube[b] })
		e = append(e, cube)
	}
	return e
}

// toNodeCover converts a global-space expression into a cover over an
// explicit fanin list.
func (s *signalSpace) toNodeCover(e algebra.Expr) ([]*network.Node, logic.Cover) {
	vars := e.Vars()
	pos := make(map[int]int, len(vars))
	fanins := make([]*network.Node, len(vars))
	for i, v := range vars {
		pos[v] = i
		fanins[i] = s.nodes[v]
	}
	cover := logic.NewCover(len(vars))
	for _, cube := range e {
		c := logic.NewCube(len(vars))
		for _, l := range cube {
			c[pos[l.Var()]] = l.Phase()
		}
		cover.AddCube(c)
	}
	return fanins, cover
}

type candidate struct {
	expr  algebra.Expr
	value int
	key   string
}

func extractRound(nw *network.Network, serial int) int {
	space := newSignalSpace(nw)
	internals := nw.InternalNodes()
	exprs := make([]algebra.Expr, len(internals))
	litMasks := make([]map[algebra.Lit]bool, len(internals))
	for i, n := range internals {
		exprs[i] = space.exprOf(n)
		mask := make(map[algebra.Lit]bool)
		for _, c := range exprs[i] {
			for _, l := range c {
				mask[l] = true
			}
		}
		litMasks[i] = mask
	}

	// Candidate kernels, deduplicated by structure.
	cands := make(map[string]*candidate)
	for i, e := range exprs {
		if len(e) < 2 || len(e) > extractMaxCubesPerNode {
			continue
		}
		for _, k := range algebra.Kernels(e) {
			if len(k.Expr) < 2 || len(k.Expr) > extractMaxKernelCubes {
				continue
			}
			key := kernelKey(k.Expr)
			if _, ok := cands[key]; !ok {
				cands[key] = &candidate{expr: k.Expr, key: key}
			}
		}
		_ = i
	}
	// Candidate cube divisors: literal pairs occurring in ≥2 cubes.
	pairCount := make(map[[2]algebra.Lit]int)
	for _, e := range exprs {
		for _, c := range e {
			for a := 0; a < len(c); a++ {
				for b := a + 1; b < len(c); b++ {
					pairCount[[2]algebra.Lit{c[a], c[b]}]++
				}
			}
		}
	}
	for pair, cnt := range pairCount {
		if cnt < 3 {
			continue
		}
		e := algebra.Expr{algebra.Cube{pair[0], pair[1]}}
		key := kernelKey(e)
		if _, ok := cands[key]; !ok {
			cands[key] = &candidate{expr: e, key: key}
		}
	}
	if len(cands) == 0 {
		return 0
	}

	// Value each candidate by total literal savings over all nodes.
	keys := make([]string, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	divide := func(e algebra.Expr, d algebra.Expr) (algebra.Expr, algebra.Expr) {
		if len(d) == 1 {
			return e.DivideByCube(d[0])
		}
		return algebra.WeakDiv(e, d)
	}
	var ranked []*candidate
	for _, key := range keys {
		c := cands[key]
		value := -c.expr.Literals()
		for i, e := range exprs {
			if !litsSubset(c.expr, litMasks[i]) {
				continue
			}
			q, r := divide(e, c.expr)
			if len(q) == 0 {
				continue
			}
			after := q.Literals() + len(q) + r.Literals()
			if save := e.Literals() - after; save > 0 {
				value += save
			}
		}
		if value >= 1 {
			c.value = value
			ranked = append(ranked, c)
		}
	}
	if len(ranked) == 0 {
		return 0
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].value > ranked[j].value })

	// Extract candidates best-first; a node rewritten this round is stale,
	// so later candidates touching it are deferred to the next round.
	touched := make([]bool, len(internals))
	extracted := 0
	for _, c := range ranked {
		var affected []int
		var quotients []algebra.Expr
		var remainders []algebra.Expr
		stale := false
		for i, e := range exprs {
			if !litsSubset(c.expr, litMasks[i]) {
				continue
			}
			q, r := divide(e, c.expr)
			if len(q) == 0 {
				continue
			}
			after := q.Literals() + len(q) + r.Literals()
			if e.Literals()-after <= 0 {
				continue
			}
			if touched[i] {
				stale = true
				break
			}
			affected = append(affected, i)
			quotients = append(quotients, q)
			remainders = append(remainders, r)
		}
		if stale || len(affected) == 0 {
			continue
		}
		fanins, cover := space.toNodeCover(c.expr)
		div := nw.AddNode(nw.FreshName(fmt.Sprintf("ex%d", serial+extracted)), fanins, cover)
		for k, i := range affected {
			rewriteWithDivisor(space, internals[i], quotients[k], remainders[k], div)
			touched[i] = true
		}
		extracted++
	}
	nw.RemoveDangling()
	return extracted
}

func litsSubset(e algebra.Expr, mask map[algebra.Lit]bool) bool {
	for _, c := range e {
		for _, l := range c {
			if !mask[l] {
				return false
			}
		}
	}
	return true
}

// rewriteWithDivisor rewrites node n as q*div + r.
func rewriteWithDivisor(space *signalSpace, n *network.Node, q, r algebra.Expr, div *network.Node) {
	varSet := make(map[int]bool)
	for _, e := range []algebra.Expr{q, r} {
		for _, v := range e.Vars() {
			varSet[v] = true
		}
	}
	vars := make([]int, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	pos := make(map[int]int, len(vars))
	fanins := make([]*network.Node, 0, len(vars)+1)
	for i, v := range vars {
		pos[v] = i
		fanins = append(fanins, space.nodes[v])
	}
	divPos := len(fanins)
	fanins = append(fanins, div)

	cover := logic.NewCover(len(fanins))
	for _, qc := range q {
		c := logic.NewCube(len(fanins))
		for _, l := range qc {
			c[pos[l.Var()]] = l.Phase()
		}
		c[divPos] = logic.Pos
		cover.AddCube(c)
	}
	for _, rc := range r {
		c := logic.NewCube(len(fanins))
		for _, l := range rc {
			c[pos[l.Var()]] = l.Phase()
		}
		cover.AddCube(c)
	}
	n.Fanins = fanins
	n.Cover = cover
	mergeDuplicateFanins(n)
}

func kernelKey(e algebra.Expr) string {
	keys := make([]string, len(e))
	for i, c := range e {
		b := make([]byte, 0, len(c)*3)
		for _, l := range c {
			b = append(b, byte(l>>16), byte(l>>8), byte(l))
		}
		keys[i] = string(b)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\xff"
	}
	return out
}
