// Package network models a multi-output combinational Boolean network: a
// DAG whose nodes carry sum-of-products functions over their fanins, as in
// the SIS logic-synthesis system that the original TELS tool was built on.
package network

import (
	"fmt"
	"sort"
	"strings"

	"tels/internal/logic"
	"tels/internal/truth"
)

// NodeKind distinguishes primary inputs from internal logic nodes.
type NodeKind int

// Node kinds.
const (
	Input    NodeKind = iota // primary input
	Internal                 // logic node with a cover over its fanins
)

// Node is one signal of the network.
type Node struct {
	Name   string
	Kind   NodeKind
	Fanins []*Node
	// Cover is the node function over Fanins (position i of each cube is
	// the phase of Fanins[i]). Meaningful only for Internal nodes.
	Cover logic.Cover
}

// IsInput reports whether the node is a primary input.
func (n *Node) IsInput() bool { return n.Kind == Input }

// Network is a named multi-output Boolean network.
type Network struct {
	Name    string
	nodes   map[string]*Node
	order   []*Node // creation order, for deterministic iteration
	Inputs  []*Node
	Outputs []*Node

	internalCount  int     // live internal nodes, for O(1) GateCount
	internals      []*Node // cached InternalNodes view, rebuilt when stale
	internalsStale bool
	suffix         map[string]int // FreshName next-suffix cache per base
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{Name: name, nodes: make(map[string]*Node), suffix: make(map[string]int)}
}

// AddInput creates a primary input node. It panics if the name is taken.
func (nw *Network) AddInput(name string) *Node {
	nw.mustBeFresh(name)
	n := &Node{Name: name, Kind: Input}
	nw.nodes[name] = n
	nw.order = append(nw.order, n)
	nw.Inputs = append(nw.Inputs, n)
	return n
}

// AddNode creates an internal node computing the cover over the fanins.
// The cover's variable count must equal len(fanins).
func (nw *Network) AddNode(name string, fanins []*Node, cover logic.Cover) *Node {
	nw.mustBeFresh(name)
	if cover.N != len(fanins) {
		panic(fmt.Sprintf("network: node %s: cover over %d variables with %d fanins",
			name, cover.N, len(fanins)))
	}
	n := &Node{Name: name, Kind: Internal, Fanins: append([]*Node(nil), fanins...), Cover: cover}
	nw.nodes[name] = n
	nw.order = append(nw.order, n)
	nw.internalCount++
	nw.internalsStale = true
	return n
}

// AddShell creates an internal node with no function yet, reserving its
// name and creation-order slot. BindNode must install the function before
// the network is used. The pair exists so converters (netcore.ToNetwork)
// can reproduce creation orders that are not topological — extraction
// rewrites fanin lists to point at later-created divisor nodes, so
// creation order alone cannot drive AddNode.
func (nw *Network) AddShell(name string) *Node {
	nw.mustBeFresh(name)
	n := &Node{Name: name, Kind: Internal}
	nw.nodes[name] = n
	nw.order = append(nw.order, n)
	nw.internalCount++
	nw.internalsStale = true
	return n
}

// BindNode installs the function of a node created with AddShell.
func (nw *Network) BindNode(n *Node, fanins []*Node, cover logic.Cover) {
	if cover.N != len(fanins) {
		panic(fmt.Sprintf("network: node %s: cover over %d variables with %d fanins",
			n.Name, cover.N, len(fanins)))
	}
	n.Fanins = append([]*Node(nil), fanins...)
	n.Cover = cover
}

func (nw *Network) mustBeFresh(name string) {
	if _, dup := nw.nodes[name]; dup {
		panic(fmt.Sprintf("network: duplicate node name %q", name))
	}
}

// MarkOutput declares the node a primary output. A node may be marked once.
func (nw *Network) MarkOutput(n *Node) {
	for _, o := range nw.Outputs {
		if o == n {
			return
		}
	}
	nw.Outputs = append(nw.Outputs, n)
}

// Node returns the node with the given name, or nil.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Nodes returns all nodes in creation order.
func (nw *Network) Nodes() []*Node { return nw.order }

// InternalNodes returns the internal nodes in creation order. The view is
// cached and rebuilt only after node additions or removals; callers must
// treat it as read-only (mutating passes already do — they rewrite node
// functions, not the returned slice).
func (nw *Network) InternalNodes() []*Node {
	if nw.internalsStale || nw.internals == nil {
		// Always a fresh slice: holders of the previous view keep a
		// consistent snapshot, exactly as with the old allocate-per-call
		// behaviour.
		out := make([]*Node, 0, nw.internalCount)
		for _, n := range nw.order {
			if n.Kind == Internal {
				out = append(out, n)
			}
		}
		nw.internals = out
		nw.internalsStale = false
	}
	return nw.internals
}

// GateCount returns the number of internal nodes in O(1).
func (nw *Network) GateCount() int { return nw.internalCount }

// FreshName returns a node name derived from base that is not yet used.
// A cached next suffix per base makes the scan O(1) amortized instead of
// O(n) per call; removals invalidate the affected base (see remove), so
// the produced names are identical to a from-zero rescan.
func (nw *Network) FreshName(base string) string {
	if _, taken := nw.nodes[base]; !taken {
		return base
	}
	for i := nw.suffix[base]; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if _, taken := nw.nodes[name]; !taken {
			nw.suffix[base] = i
			return name
		}
	}
}

// TopoSort returns the nodes in topological order (fanins before fanouts).
// It returns an error if the network contains a cycle.
func (nw *Network) TopoSort() ([]*Node, error) {
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make(map[*Node]int, len(nw.order))
	var out []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n] {
		case done:
			return nil
		case active:
			return fmt.Errorf("network %s: cycle through node %s", nw.Name, n.Name)
		}
		state[n] = active
		for _, f := range n.Fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[n] = done
		out = append(out, n)
		return nil
	}
	for _, n := range nw.order {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Validate checks structural sanity: acyclicity, fanins present in the
// network, cover arity, and that outputs exist.
func (nw *Network) Validate() error {
	if _, err := nw.TopoSort(); err != nil {
		return err
	}
	for _, n := range nw.order {
		if n.Kind == Internal && n.Cover.N != len(n.Fanins) {
			return fmt.Errorf("network %s: node %s cover arity %d != fanin count %d",
				nw.Name, n.Name, n.Cover.N, len(n.Fanins))
		}
		for _, f := range n.Fanins {
			if nw.nodes[f.Name] != f {
				return fmt.Errorf("network %s: node %s has foreign fanin %s", nw.Name, n.Name, f.Name)
			}
		}
	}
	if len(nw.Outputs) == 0 {
		return fmt.Errorf("network %s: no primary outputs", nw.Name)
	}
	return nil
}

// FanoutCounts returns, for every node, how many internal nodes reference
// it as a fanin (multiple references from one node count once per position)
// plus one per primary-output marking.
func (nw *Network) FanoutCounts() map[*Node]int {
	counts := make(map[*Node]int, len(nw.order))
	for _, n := range nw.order {
		for _, f := range n.Fanins {
			counts[f]++
		}
	}
	for _, o := range nw.Outputs {
		counts[o]++
	}
	return counts
}

// FanoutNodes returns the set of internal nodes with more than one fanout
// reference — the shared nodes that collapsing must preserve.
func (nw *Network) FanoutNodes() map[*Node]bool {
	out := make(map[*Node]bool)
	for n, c := range nw.FanoutCounts() {
		if n.Kind == Internal && c > 1 {
			out[n] = true
		}
	}
	return out
}

// Levels returns each node's level (primary inputs at 0, every internal
// node one more than its deepest fanin) and the network depth.
func (nw *Network) Levels() (map[*Node]int, int) {
	order, err := nw.TopoSort()
	if err != nil {
		panic(err)
	}
	levels := make(map[*Node]int, len(order))
	depth := 0
	for _, n := range order {
		if n.Kind == Input {
			levels[n] = 0
			continue
		}
		l := 0
		for _, f := range n.Fanins {
			if levels[f]+1 > l {
				l = levels[f] + 1
			}
		}
		levels[n] = l
		if l > depth {
			depth = l
		}
	}
	return levels, depth
}

// Eval computes the value of every node under the given input assignment.
// The assignment must cover every primary input by name.
func (nw *Network) Eval(inputs map[string]bool) (map[string]bool, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	values := make(map[string]bool, len(order))
	for _, n := range order {
		if n.Kind == Input {
			v, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("network %s: no value for input %s", nw.Name, n.Name)
			}
			values[n.Name] = v
			continue
		}
		assign := make([]bool, len(n.Fanins))
		for i, f := range n.Fanins {
			assign[i] = values[f.Name]
		}
		values[n.Name] = n.Cover.Eval(assign)
	}
	return values, nil
}

// EvalOutputs evaluates the network and returns output values in output
// order.
func (nw *Network) EvalOutputs(inputs map[string]bool) ([]bool, error) {
	values, err := nw.Eval(inputs)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(nw.Outputs))
	for i, o := range nw.Outputs {
		out[i] = values[o.Name]
	}
	return out, nil
}

// LocalFunction returns the truth table of node n expressed over the given
// support nodes, treating every support node as a free variable and
// evaluating the cone between them and n. Every path from n must reach a
// support node or primary-input-free constant; support nodes cut the cone.
func (nw *Network) LocalFunction(n *Node, support []*Node) (*truth.Table, error) {
	if len(support) > truth.MaxVars {
		return nil, fmt.Errorf("network: support of %d exceeds %d variables", len(support), truth.MaxVars)
	}
	pos := make(map[*Node]int, len(support))
	for i, s := range support {
		pos[s] = i
	}
	tt := truth.New(len(support))
	assign := make(map[*Node]bool, len(support))
	var eval func(x *Node) (bool, error)
	eval = func(x *Node) (bool, error) {
		if v, ok := assign[x]; ok {
			return v, nil
		}
		if x.Kind == Input {
			return false, fmt.Errorf("network: cone of %s escapes support at input %s", n.Name, x.Name)
		}
		in := make([]bool, len(x.Fanins))
		for i, f := range x.Fanins {
			v, err := eval(f)
			if err != nil {
				return false, err
			}
			in[i] = v
		}
		v := x.Cover.Eval(in)
		assign[x] = v
		return v, nil
	}
	for m := 0; m < tt.Size(); m++ {
		for k := range assign {
			delete(assign, k)
		}
		for i, s := range support {
			assign[s] = m&(1<<uint(i)) != 0
		}
		v, err := eval(n)
		if err != nil {
			return nil, err
		}
		tt.Set(m, v)
	}
	return tt, nil
}

// ReplaceNode substitutes node old with node repl in every fanin list and
// in the output list, then removes old from the network. old and repl must
// both belong to the network.
func (nw *Network) ReplaceNode(old, repl *Node) {
	for _, n := range nw.order {
		for i, f := range n.Fanins {
			if f == old {
				n.Fanins[i] = repl
			}
		}
	}
	for i, o := range nw.Outputs {
		if o == old {
			nw.Outputs[i] = repl
		}
	}
	nw.remove(old)
}

func (nw *Network) remove(n *Node) {
	delete(nw.nodes, n.Name)
	// Freeing base_i re-opens a hole below the cached next suffix; drop the
	// cache entry so FreshName rescans that base from zero.
	if i := strings.LastIndexByte(n.Name, '_'); i >= 0 {
		delete(nw.suffix, n.Name[:i])
	}
	for i, x := range nw.order {
		if x == n {
			nw.order = append(nw.order[:i], nw.order[i+1:]...)
			break
		}
	}
	if n.Kind == Input {
		for i, x := range nw.Inputs {
			if x == n {
				nw.Inputs = append(nw.Inputs[:i], nw.Inputs[i+1:]...)
				break
			}
		}
	} else {
		nw.internalCount--
	}
	nw.internalsStale = true
}

// RemoveDangling deletes internal nodes with no fanouts that are not
// outputs, repeating until fixpoint. It returns the number removed.
func (nw *Network) RemoveDangling() int {
	removed := 0
	for {
		counts := nw.FanoutCounts()
		var victims []*Node
		for _, n := range nw.order {
			if n.Kind == Internal && counts[n] == 0 {
				victims = append(victims, n)
			}
		}
		if len(victims) == 0 {
			return removed
		}
		for _, v := range victims {
			nw.remove(v)
			removed++
		}
	}
}

// Clone returns a deep copy of the network. Node identities are new but
// names, structure and covers are identical.
func (nw *Network) Clone() *Network {
	out := New(nw.Name)
	mapping := make(map[*Node]*Node, len(nw.order))
	for _, n := range nw.order {
		if n.Kind == Input {
			mapping[n] = out.AddInput(n.Name)
		}
	}
	// Internal nodes in topological order so fanins exist first.
	order, err := nw.TopoSort()
	if err != nil {
		panic(err)
	}
	for _, n := range order {
		if n.Kind != Internal {
			continue
		}
		fanins := make([]*Node, len(n.Fanins))
		for i, f := range n.Fanins {
			fanins[i] = mapping[f]
		}
		mapping[n] = out.AddNode(n.Name, fanins, n.Cover.Clone())
	}
	for _, o := range nw.Outputs {
		out.MarkOutput(mapping[o])
	}
	return out
}

// Stats summarizes a network for reporting.
type Stats struct {
	Inputs   int
	Outputs  int
	Gates    int
	Levels   int
	Literals int
}

// Stats computes summary statistics.
func (nw *Network) Stats() Stats {
	_, depth := nw.Levels()
	lits := 0
	for _, n := range nw.InternalNodes() {
		lits += n.Cover.LiteralCount()
	}
	return Stats{
		Inputs:   len(nw.Inputs),
		Outputs:  len(nw.Outputs),
		Gates:    nw.GateCount(),
		Levels:   depth,
		Literals: lits,
	}
}

// SortedNodeNames returns all node names sorted, for deterministic output.
func (nw *Network) SortedNodeNames() []string {
	names := make([]string, 0, len(nw.nodes))
	for name := range nw.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
