package network

import "tels/internal/logic"

// Builder provides convenience constructors for common gate shapes. It
// exists for the benchmark generators and tests; the synthesis passes
// construct covers directly.
type Builder struct {
	Net *Network
}

// NewBuilder wraps a network in a Builder.
func NewBuilder(name string) *Builder {
	return &Builder{Net: New(name)}
}

// Input adds a primary input.
func (b *Builder) Input(name string) *Node { return b.Net.AddInput(name) }

// gate adds a fresh internal node named after base.
func (b *Builder) gate(base string, fanins []*Node, cover logic.Cover) *Node {
	return b.Net.AddNode(b.Net.FreshName(base), fanins, cover)
}

// And adds an AND gate over the fanins.
func (b *Builder) And(name string, ins ...*Node) *Node {
	c := logic.NewCube(len(ins))
	for i := range ins {
		c[i] = logic.Pos
	}
	cv := logic.NewCover(len(ins))
	cv.AddCube(c)
	return b.gate(name, ins, cv)
}

// Or adds an OR gate over the fanins.
func (b *Builder) Or(name string, ins ...*Node) *Node {
	cv := logic.NewCover(len(ins))
	for i := range ins {
		c := logic.NewCube(len(ins))
		c[i] = logic.Pos
		cv.AddCube(c)
	}
	return b.gate(name, ins, cv)
}

// Not adds an inverter.
func (b *Builder) Not(name string, in *Node) *Node {
	cv := logic.NewCover(1)
	cv.AddCube(logic.Cube{logic.Neg})
	return b.gate(name, []*Node{in}, cv)
}

// Buf adds a buffer (identity) node.
func (b *Builder) Buf(name string, in *Node) *Node {
	cv := logic.NewCover(1)
	cv.AddCube(logic.Cube{logic.Pos})
	return b.gate(name, []*Node{in}, cv)
}

// Xor adds a two-input XOR gate.
func (b *Builder) Xor(name string, a, x *Node) *Node {
	cv := logic.MustCover("10", "01")
	return b.gate(name, []*Node{a, x}, cv)
}

// Xnor adds a two-input XNOR gate.
func (b *Builder) Xnor(name string, a, x *Node) *Node {
	cv := logic.MustCover("11", "00")
	return b.gate(name, []*Node{a, x}, cv)
}

// Nand adds a NAND gate over the fanins.
func (b *Builder) Nand(name string, ins ...*Node) *Node {
	cv := logic.NewCover(len(ins))
	for i := range ins {
		c := logic.NewCube(len(ins))
		c[i] = logic.Neg
		cv.AddCube(c)
	}
	return b.gate(name, ins, cv)
}

// Nor adds a NOR gate over the fanins.
func (b *Builder) Nor(name string, ins ...*Node) *Node {
	c := logic.NewCube(len(ins))
	for i := range ins {
		c[i] = logic.Neg
	}
	cv := logic.NewCover(len(ins))
	cv.AddCube(c)
	return b.gate(name, ins, cv)
}

// Mux2 adds a 2:1 multiplexer: sel ? a1 : a0.
func (b *Builder) Mux2(name string, sel, a0, a1 *Node) *Node {
	// f = !sel*a0 + sel*a1 over (sel, a0, a1).
	cv := logic.MustCover("01-", "1-1")
	return b.gate(name, []*Node{sel, a0, a1}, cv)
}

// Node adds an internal node with an explicit cover.
func (b *Builder) Node(name string, cover logic.Cover, ins ...*Node) *Node {
	return b.gate(name, ins, cover)
}

// Output marks the node as a primary output.
func (b *Builder) Output(n *Node) { b.Net.MarkOutput(n) }

// OutputAs adds a buffer named name driven by n and marks it an output.
// Useful to give outputs stable names independent of internal nodes.
func (b *Builder) OutputAs(name string, n *Node) *Node {
	o := b.Buf(name, n)
	b.Net.MarkOutput(o)
	return o
}
