package network

import (
	"testing"

	"tels/internal/logic"
	"tels/internal/truth"
)

// buildExample constructs the motivational network of the paper's Fig 2(a):
//
//	n4 = x1*x2*x3, inv = !x1, n5 = inv*x4, n3 = n4 + n5,
//	n1 = n3*x5, n2 = x6*x7, f = n1 + n2.
func buildExample() (*Network, *Node) {
	b := NewBuilder("fig2a")
	x := make([]*Node, 8)
	for i := 1; i <= 7; i++ {
		x[i] = b.Input(namef("x", i))
	}
	n4 := b.And("n4", x[1], x[2], x[3])
	inv := b.Not("inv", x[1])
	n5 := b.And("n5", inv, x[4])
	n3 := b.Or("n3", n4, n5)
	n1 := b.And("n1", n3, x[5])
	n2 := b.And("n2", x[6], x[7])
	f := b.Or("f", n1, n2)
	b.Output(f)
	return b.Net, f
}

func namef(p string, i int) string {
	return p + string(rune('0'+i))
}

func TestBuildAndValidate(t *testing.T) {
	nw, _ := buildExample()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := nw.GateCount(); got != 7 {
		t.Fatalf("GateCount = %d, want 7", got)
	}
	if got := len(nw.Inputs); got != 7 {
		t.Fatalf("inputs = %d, want 7", got)
	}
}

func TestLevels(t *testing.T) {
	nw, f := buildExample()
	levels, depth := nw.Levels()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5 (including the inverter)", depth)
	}
	if levels[f] != 5 {
		t.Fatalf("level(f) = %d, want 5", levels[f])
	}
	if levels[nw.Node("inv")] != 1 {
		t.Fatalf("level(inv) = %d, want 1", levels[nw.Node("inv")])
	}
}

func TestEval(t *testing.T) {
	nw, _ := buildExample()
	// f = (x1x2x3 + !x1x4)x5 + x6x7
	eval := func(x1, x2, x3, x4, x5, x6, x7 bool) bool {
		in := map[string]bool{"x1": x1, "x2": x2, "x3": x3, "x4": x4, "x5": x5, "x6": x6, "x7": x7}
		out, err := nw.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	for m := 0; m < 128; m++ {
		v := make([]bool, 8)
		for i := 1; i <= 7; i++ {
			v[i] = m&(1<<uint(i-1)) != 0
		}
		want := (v[1] && v[2] && v[3] || !v[1] && v[4]) && v[5] || v[6] && v[7]
		if got := eval(v[1], v[2], v[3], v[4], v[5], v[6], v[7]); got != want {
			t.Fatalf("Eval mismatch at minterm %d: got %v want %v", m, got, want)
		}
	}
}

func TestEvalMissingInput(t *testing.T) {
	nw, _ := buildExample()
	if _, err := nw.EvalOutputs(map[string]bool{"x1": true}); err == nil {
		t.Fatal("expected error for missing inputs")
	}
}

func TestFanout(t *testing.T) {
	nw, _ := buildExample()
	shared := nw.FanoutNodes()
	// In Fig 2(a) no internal node fans out twice; make n3 shared by
	// adding a second consumer.
	if len(shared) != 0 {
		t.Fatalf("unexpected shared nodes: %v", shared)
	}
	b := &Builder{Net: nw}
	extra := b.And("extra", nw.Node("n3"), nw.Node("n2"))
	nw.MarkOutput(extra)
	shared = nw.FanoutNodes()
	if !shared[nw.Node("n3")] || !shared[nw.Node("n2")] {
		t.Fatalf("n3 and n2 should be shared: %v", shared)
	}
}

func TestTopoSortCycleDetection(t *testing.T) {
	nw := New("cyc")
	a := nw.AddInput("a")
	n1 := nw.AddNode("n1", []*Node{a}, logic.MustCover("1"))
	n2 := nw.AddNode("n2", []*Node{n1}, logic.MustCover("1"))
	// Manufacture a cycle.
	n1.Fanins[0] = n2
	if _, err := nw.TopoSort(); err == nil {
		t.Fatal("TopoSort should detect the cycle")
	}
}

func TestLocalFunction(t *testing.T) {
	nw, f := buildExample()
	n3 := nw.Node("n3")
	x5 := nw.Node("x5")
	n2 := nw.Node("n2")
	// f over support (n3, x5, n2) = n3*x5 + n2.
	tt, err := nw.LocalFunction(f, []*Node{n3, x5, n2})
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Var(3, 0).And(truth.Var(3, 1)).Or(truth.Var(3, 2))
	if !tt.Equal(want) {
		t.Fatalf("LocalFunction = %s, want %s", tt, want)
	}
	// Escaping the support must fail.
	if _, err := nw.LocalFunction(f, []*Node{n3}); err == nil {
		t.Fatal("expected error when cone escapes support")
	}
}

func TestCloneIndependence(t *testing.T) {
	nw, _ := buildExample()
	cp := nw.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	if cp.GateCount() != nw.GateCount() || len(cp.Inputs) != len(nw.Inputs) {
		t.Fatal("clone has different shape")
	}
	// Mutating the clone must not affect the original.
	cp.Node("f").Cover = logic.Zero(2)
	if nw.Node("f").Cover.IsZero() {
		t.Fatal("clone shares cover storage with original")
	}
	// Functional identity on a few vectors.
	in := map[string]bool{"x1": true, "x2": true, "x3": true, "x4": false, "x5": true, "x6": false, "x7": true}
	a, _ := nw.EvalOutputs(in)
	want := true
	if a[0] != want {
		t.Fatalf("original eval = %v, want %v", a[0], want)
	}
}

func TestRemoveDangling(t *testing.T) {
	nw, _ := buildExample()
	b := &Builder{Net: nw}
	dead := b.And("dead", nw.Node("x1"), nw.Node("x2"))
	deader := b.Not("deader", dead)
	_ = deader
	if n := nw.RemoveDangling(); n != 2 {
		t.Fatalf("RemoveDangling removed %d, want 2", n)
	}
	if nw.Node("dead") != nil || nw.Node("deader") != nil {
		t.Fatal("dangling nodes still present")
	}
	if nw.GateCount() != 7 {
		t.Fatalf("GateCount = %d, want 7", nw.GateCount())
	}
}

func TestReplaceNode(t *testing.T) {
	nw, _ := buildExample()
	n4 := nw.Node("n4")
	b := &Builder{Net: nw}
	repl := b.And("n4b", nw.Node("x1"), nw.Node("x2"), nw.Node("x3"))
	nw.ReplaceNode(n4, repl)
	if nw.Node("n4") != nil {
		t.Fatal("old node still present")
	}
	found := false
	for _, f := range nw.Node("n3").Fanins {
		if f == repl {
			found = true
		}
	}
	if !found {
		t.Fatal("replacement not wired into n3")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderGates(t *testing.T) {
	b := NewBuilder("gates")
	a := b.Input("a")
	c := b.Input("b")
	cases := []struct {
		node *Node
		fn   func(x, y bool) bool
	}{
		{b.And("and", a, c), func(x, y bool) bool { return x && y }},
		{b.Or("or", a, c), func(x, y bool) bool { return x || y }},
		{b.Xor("xor", a, c), func(x, y bool) bool { return x != y }},
		{b.Xnor("xnor", a, c), func(x, y bool) bool { return x == y }},
		{b.Nand("nand", a, c), func(x, y bool) bool { return !(x && y) }},
		{b.Nor("nor", a, c), func(x, y bool) bool { return !(x || y) }},
	}
	for _, tc := range cases {
		b.Output(tc.node)
	}
	not := b.Not("not", a)
	b.Output(not)
	mux := b.Mux2("mux", a, c, not)
	b.Output(mux)
	for m := 0; m < 4; m++ {
		x, y := m&1 != 0, m&2 != 0
		vals, err := b.Net.Eval(map[string]bool{"a": x, "b": y})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			if vals[tc.node.Name] != tc.fn(x, y) {
				t.Fatalf("%s(%v,%v) = %v", tc.node.Name, x, y, vals[tc.node.Name])
			}
		}
		if vals["not"] != !x {
			t.Fatalf("not(%v) = %v", x, vals["not"])
		}
		wantMux := y
		if x {
			wantMux = !x == false && vals["not"] == vals["not"] && vals["not"] != false || vals["not"]
			wantMux = vals["not"]
		}
		if vals["mux"] != wantMux {
			t.Fatalf("mux(%v; %v, %v) = %v, want %v", x, y, vals["not"], vals["mux"], wantMux)
		}
	}
}

func TestFreshName(t *testing.T) {
	nw := New("fresh")
	nw.AddInput("a")
	if got := nw.FreshName("b"); got != "b" {
		t.Fatalf("FreshName(b) = %q", got)
	}
	if got := nw.FreshName("a"); got != "a_0" {
		t.Fatalf("FreshName(a) = %q", got)
	}
	nw.AddInput("a_0")
	if got := nw.FreshName("a"); got != "a_1" {
		t.Fatalf("FreshName(a) = %q", got)
	}
}

func TestStats(t *testing.T) {
	nw, _ := buildExample()
	s := nw.Stats()
	if s.Gates != 7 || s.Levels != 5 || s.Inputs != 7 || s.Outputs != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Literals == 0 {
		t.Fatal("Literals should be nonzero")
	}
}
