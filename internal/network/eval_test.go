package network

import (
	"math/rand"
	"testing"
)

func TestNetworkEvaluatorMatchesEval(t *testing.T) {
	nw, _ := buildExample()
	ev, err := nw.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	var out []bool
	for m := 0; m < 128; m++ {
		in := map[string]bool{}
		for i := 1; i <= 7; i++ {
			in["x"+string(rune('0'+i))] = m&(1<<uint(i-1)) != 0
		}
		want, err := nw.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err = ev.Eval(in, out)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != out[i] {
				t.Fatalf("evaluator differs at vector %d", m)
			}
		}
	}
}

func TestNetworkEvaluatorMissingInput(t *testing.T) {
	nw, _ := buildExample()
	ev, err := nw.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(map[string]bool{"x1": true}, nil); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestNetworkEvaluatorReuse(t *testing.T) {
	// The output slice must be reusable without corruption across calls.
	nw, _ := buildExample()
	ev, err := nw.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var out []bool
	for iter := 0; iter < 100; iter++ {
		in := map[string]bool{}
		for i := 1; i <= 7; i++ {
			in["x"+string(rune('0'+i))] = rng.Intn(2) == 1
		}
		out, err = ev.Eval(in, out)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := nw.EvalOutputs(in)
		if out[0] != want[0] {
			t.Fatalf("iter %d mismatch", iter)
		}
	}
}

func TestNetworkEvaluatorPIOutput(t *testing.T) {
	nw := New("pipo")
	a := nw.AddInput("a")
	nw.MarkOutput(a)
	ev, err := nw.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ev.Eval(map[string]bool{"a": true}, nil)
	if err != nil || len(out) != 1 || !out[0] {
		t.Fatalf("PI output eval = %v, %v", out, err)
	}
}
