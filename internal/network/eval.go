package network

import "fmt"

// Evaluator evaluates a Boolean network repeatedly without re-sorting the
// DAG or allocating per call. It is not safe for concurrent use.
type Evaluator struct {
	nw       *Network
	order    []*Node // internal nodes, topological
	slot     map[*Node]int
	nodeIn   [][]int
	nodeSlot []int
	outSlots []int
	values   []bool
	buf      []bool
}

// NewEvaluator prepares a fast evaluator for the network.
func (nw *Network) NewEvaluator() (*Evaluator, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{nw: nw, slot: make(map[*Node]int, len(order))}
	for _, n := range order {
		ev.slot[n] = len(ev.values)
		ev.values = append(ev.values, false)
		if n.Kind != Internal {
			continue
		}
		ev.order = append(ev.order, n)
	}
	for _, n := range ev.order {
		ins := make([]int, len(n.Fanins))
		for i, f := range n.Fanins {
			ins[i] = ev.slot[f]
		}
		ev.nodeIn = append(ev.nodeIn, ins)
		ev.nodeSlot = append(ev.nodeSlot, ev.slot[n])
	}
	for _, o := range nw.Outputs {
		ev.outSlots = append(ev.outSlots, ev.slot[o])
	}
	return ev, nil
}

// Eval computes the outputs for one input assignment. The returned slice
// is reused across calls.
func (ev *Evaluator) Eval(inputs map[string]bool, out []bool) ([]bool, error) {
	for _, in := range ev.nw.Inputs {
		v, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("network: no value for input %s", in.Name)
		}
		ev.values[ev.slot[in]] = v
	}
	for ni, n := range ev.order {
		ins := ev.nodeIn[ni]
		if cap(ev.buf) < len(ins) {
			ev.buf = make([]bool, len(ins))
		}
		buf := ev.buf[:len(ins)]
		for i, slot := range ins {
			buf[i] = ev.values[slot]
		}
		ev.values[ev.nodeSlot[ni]] = n.Cover.Eval(buf)
	}
	out = out[:0]
	for _, slot := range ev.outSlots {
		out = append(out, ev.values[slot])
	}
	return out, nil
}
