// Package enum enumerates positive-unate (monotone) Boolean functions and
// counts how many are threshold functions. The paper's Fig. 10 analysis
// leans on Muroga's classical counts — "all positive unate functions of
// three or fewer variables are threshold functions. However, 17 out of 20
// and only 92 out of 168 positive unate functions of four and five
// variables, respectively, are threshold functions, not considering
// variable permutations" — and this package re-derives those numbers from
// scratch, giving an independent end-to-end validation of the threshold
// checker.
package enum

import (
	"fmt"
	"sort"

	"tels/internal/core"
	"tels/internal/truth"
)

// MaxVars bounds the enumeration; monotone functions are represented as
// truth-table bitmasks in a uint64 (2^5 = 32 bits for n = 5).
const MaxVars = 5

// Monotone returns the truth tables of all monotone (positive unate)
// functions of n variables, including the constants, as bitmasks of
// length 2^n. The count is the Dedekind number D(n): 3, 6, 20, 168, 7581
// for n = 1..5.
func Monotone(n int) []uint64 {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("enum: n = %d out of range [0,%d]", n, MaxVars))
	}
	// f is monotone iff f = x_n·f1 + f0 with f0 ≤ f1 both monotone on
	// n-1 variables.
	fns := []uint64{0, 1} // n = 0: the two constants
	for k := 1; k <= n; k++ {
		half := uint(1) << uint(k-1)
		var next []uint64
		for _, f1 := range fns {
			for _, f0 := range fns {
				if f0&^f1 != 0 { // not f0 ≤ f1
					continue
				}
				next = append(next, f0|f1<<half)
			}
		}
		fns = next
	}
	return fns
}

// FullSupport filters the functions to those depending on all n variables.
func FullSupport(fns []uint64, n int) []uint64 {
	var out []uint64
	for _, f := range fns {
		if dependsOnAll(f, n) {
			out = append(out, f)
		}
	}
	return out
}

func dependsOnAll(f uint64, n int) bool {
	size := 1 << uint(n)
	for i := 0; i < n; i++ {
		step := 1 << uint(i)
		depends := false
		for m := 0; m < size; m++ {
			if m&step != 0 {
				continue
			}
			if (f>>uint(m))&1 != (f>>uint(m|step))&1 {
				depends = true
				break
			}
		}
		if !depends {
			return false
		}
	}
	return true
}

// Canonical returns the lexicographically smallest truth table obtainable
// by permuting the n input variables — the representative of the
// function's permutation class.
func Canonical(f uint64, n int) uint64 {
	perms := permutations(n)
	best := f
	for _, p := range perms {
		g := permute(f, n, p)
		if g < best {
			best = g
		}
	}
	return best
}

// permute applies the variable permutation p (new variable i reads old
// variable p[i]) to the truth table.
func permute(f uint64, n int, p []int) uint64 {
	size := 1 << uint(n)
	var g uint64
	for m := 0; m < size; m++ {
		src := 0
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				src |= 1 << uint(p[i])
			}
		}
		if (f>>uint(src))&1 == 1 {
			g |= 1 << uint(m)
		}
	}
	return g
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// Classes groups full-support monotone functions of n variables into
// permutation classes and returns one representative per class, sorted.
func Classes(n int) []uint64 {
	fns := FullSupport(Monotone(n), n)
	seen := make(map[uint64]bool)
	for _, f := range fns {
		seen[Canonical(f, n)] = true
	}
	out := make([]uint64, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Row is one line of the unate-vs-threshold census.
type Row struct {
	Vars      int
	Classes   int // positive unate functions of exactly n vars, up to permutation
	Threshold int // how many of those classes are threshold functions
}

// Census counts, for each variable count up to maxVars, the permutation
// classes of full-support positive-unate functions and how many are
// threshold (decided by exact LP separability). For n ≤ 3 every class is
// threshold; Muroga's classical values for n = 4 and 5 are 17/20 and
// 92/168, which the paper quotes in §VI-B.
func Census(maxVars int) []Row {
	rows := make([]Row, 0, maxVars)
	for n := 1; n <= maxVars; n++ {
		classes := Classes(n)
		thr := 0
		for _, f := range classes {
			if isThreshold(f, n) {
				thr++
			}
		}
		rows = append(rows, Row{Vars: n, Classes: len(classes), Threshold: thr})
	}
	return rows
}

func isThreshold(f uint64, n int) bool {
	tt := truth.New(n)
	for m := 0; m < 1<<uint(n); m++ {
		if (f>>uint(m))&1 == 1 {
			tt.Set(m, true)
		}
	}
	return core.IsThresholdLP(tt)
}
