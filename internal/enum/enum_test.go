package enum

import "testing"

// Dedekind numbers D(0)..D(5): monotone function counts incl. constants.
func TestDedekindNumbers(t *testing.T) {
	want := []int{2, 3, 6, 20, 168, 7581}
	for n := 0; n <= 5; n++ {
		if got := len(Monotone(n)); got != want[n] {
			t.Errorf("D(%d) = %d, want %d", n, got, want[n])
		}
	}
}

func TestMonotoneAreMonotone(t *testing.T) {
	for n := 1; n <= 4; n++ {
		size := 1 << uint(n)
		for _, f := range Monotone(n) {
			for m := 0; m < size; m++ {
				for i := 0; i < n; i++ {
					if m&(1<<uint(i)) != 0 {
						continue
					}
					lo := (f >> uint(m)) & 1
					hi := (f >> uint(m|1<<uint(i))) & 1
					if lo > hi {
						t.Fatalf("n=%d: function %x not monotone in var %d at %d", n, f, i, m)
					}
				}
			}
		}
	}
}

func TestFullSupport(t *testing.T) {
	// Of the 6 monotone functions of 2 variables, exactly 2 depend on
	// both (AND and OR).
	full := FullSupport(Monotone(2), 2)
	if len(full) != 2 {
		t.Fatalf("full-support 2-var monotone functions = %d, want 2", len(full))
	}
}

func TestCanonicalInvariance(t *testing.T) {
	// x0*x1 + x2 and its permuted twin x1*x2 + x0 share a canonical form.
	// Truth tables over 3 vars:
	f := uint64(0)
	g := uint64(0)
	for m := 0; m < 8; m++ {
		x0, x1, x2 := m&1 != 0, m&2 != 0, m&4 != 0
		if x0 && x1 || x2 {
			f |= 1 << uint(m)
		}
		if x1 && x2 || x0 {
			g |= 1 << uint(m)
		}
	}
	if Canonical(f, 3) != Canonical(g, 3) {
		t.Fatal("permuted functions canonicalize differently")
	}
	// A genuinely different function must differ.
	var and3 uint64 = 1 << 7
	if Canonical(f, 3) == Canonical(and3, 3) {
		t.Fatal("distinct functions share a canonical form")
	}
}

// The headline: re-derive the census the paper quotes in §VI-B. The
// threshold counts match the paper (and Winder/Muroga) exactly: every
// unate class of ≤ 3 variables, 17 of the 4-variable classes, 92 of the
// 5-variable classes. For the 5-variable denominator the paper quotes
// 168 where this exhaustive enumeration — validated by the Dedekind
// numbers and an independent counting identity below — finds 180
// permutation classes of full-support monotone functions (OEIS A006602);
// see EXPERIMENTS.md for the discussion.
func TestMurogaCensus(t *testing.T) {
	rows := Census(5)
	want := []Row{
		{Vars: 1, Classes: 1, Threshold: 1},
		{Vars: 2, Classes: 2, Threshold: 2},
		{Vars: 3, Classes: 5, Threshold: 5},    // all ≤3-var unate are threshold
		{Vars: 4, Classes: 20, Threshold: 17},  // paper: "17 out of 20"
		{Vars: 5, Classes: 180, Threshold: 92}, // paper: "92 out of 168" — see note
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("n=%d: got %+v, want %+v", w.Vars, rows[i], w)
		}
	}
}

// Counting identity: D(n) = Σ_k C(n,k)·F(k) where F(k) is the number of
// monotone functions with full support on exactly k variables. This
// cross-checks FullSupport independently of the class counting.
func TestFullSupportCountingIdentity(t *testing.T) {
	var full [6]int
	for k := 0; k <= 5; k++ {
		full[k] = len(FullSupport(Monotone(k), k))
	}
	choose := [6][6]int{}
	for n := 0; n <= 5; n++ {
		choose[n][0] = 1
		for k := 1; k <= n; k++ {
			choose[n][k] = choose[n-1][k-1]
			if k <= n-1 {
				choose[n][k] += choose[n-1][k]
			}
		}
	}
	dedekind := []int{2, 3, 6, 20, 168, 7581}
	for n := 0; n <= 5; n++ {
		sum := 0
		for k := 0; k <= n; k++ {
			sum += choose[n][k] * full[k]
		}
		if sum != dedekind[n] {
			t.Errorf("n=%d: Σ C(n,k)·F(k) = %d, want D(n) = %d", n, sum, dedekind[n])
		}
	}
}
