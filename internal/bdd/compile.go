package bdd

import (
	"fmt"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// VarOrder returns a variable order for the network's primary inputs:
// a depth-first walk from the outputs records each input at first visit,
// which interleaves structurally related inputs (e.g. the a/b bits of a
// comparator) — the classic static ordering heuristic.
func VarOrder(nw *network.Network) map[string]int {
	order := make(map[string]int)
	visited := make(map[*network.Node]bool)
	var walk func(n *network.Node)
	walk = func(n *network.Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if n.Kind == network.Input {
			if _, ok := order[n.Name]; !ok {
				order[n.Name] = len(order)
			}
			return
		}
		for _, f := range n.Fanins {
			walk(f)
		}
	}
	for _, o := range nw.Outputs {
		walk(o)
	}
	// Inputs not in any output cone still need levels.
	for _, in := range nw.Inputs {
		if _, ok := order[in.Name]; !ok {
			order[in.Name] = len(order)
		}
	}
	return order
}

// CompileBoolean builds one BDD per primary output of the Boolean network
// under the given input-name-to-level order.
func CompileBoolean(m *Manager, nw *network.Network, varLevel map[string]int) ([]Ref, error) {
	refs := make(map[*network.Node]Ref)
	for _, in := range nw.Inputs {
		level, ok := varLevel[in.Name]
		if !ok {
			return nil, fmt.Errorf("bdd: no level for input %s", in.Name)
		}
		v, err := m.Var(level)
		if err != nil {
			return nil, err
		}
		refs[in] = v
	}
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		fanins := make([]Ref, len(n.Fanins))
		for i, f := range n.Fanins {
			fanins[i] = refs[f]
		}
		r, err := coverBDD(m, n.Cover, fanins)
		if err != nil {
			return nil, err
		}
		refs[n] = r
	}
	out := make([]Ref, len(nw.Outputs))
	for i, o := range nw.Outputs {
		out[i] = refs[o]
	}
	return out, nil
}

// coverBDD builds the OR-of-cubes function over the fanin BDDs.
func coverBDD(m *Manager, cover logic.Cover, fanins []Ref) (Ref, error) {
	result := False
	for _, cube := range cover.Cubes {
		term := True
		for i, ph := range cube {
			var lit Ref
			var err error
			switch ph {
			case logic.Pos:
				lit = fanins[i]
			case logic.Neg:
				lit, err = m.Not(fanins[i])
				if err != nil {
					return False, err
				}
			default:
				continue
			}
			term, err = m.And(term, lit)
			if err != nil {
				return False, err
			}
			if term == False {
				break
			}
		}
		var err error
		result, err = m.Or(result, term)
		if err != nil {
			return False, err
		}
		if result == True {
			break
		}
	}
	return result, nil
}

// CompileThreshold builds one BDD per primary output of the threshold
// network under the given input-name-to-level order, using the
// running-sum construction for each LTG.
func CompileThreshold(m *Manager, tn *core.Network, varLevel map[string]int) ([]Ref, error) {
	refs := make(map[string]Ref)
	for _, in := range tn.Inputs {
		level, ok := varLevel[in]
		if !ok {
			return nil, fmt.Errorf("bdd: no level for input %s", in)
		}
		v, err := m.Var(level)
		if err != nil {
			return nil, err
		}
		refs[in] = v
	}
	order, err := tn.TopoGates()
	if err != nil {
		return nil, err
	}
	for _, g := range order {
		fanins := make([]Ref, len(g.Inputs))
		for i, in := range g.Inputs {
			r, ok := refs[in]
			if !ok {
				return nil, fmt.Errorf("bdd: gate %s input %s is undriven", g.Name, in)
			}
			fanins[i] = r
		}
		r, err := m.Threshold(fanins, g.Weights, g.T)
		if err != nil {
			return nil, err
		}
		refs[g.Name] = r
	}
	out := make([]Ref, len(tn.Outputs))
	for i, o := range tn.Outputs {
		r, ok := refs[o]
		if !ok {
			return nil, fmt.Errorf("bdd: output %s is undriven", o)
		}
		out[i] = r
	}
	return out, nil
}
