package bdd

import (
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// buildComparator2 returns a 2-bit equality network whose natural DFS
// order interleaves the a/b bits.
func buildComparator2() *network.Network {
	b := network.NewBuilder("eq2")
	a0 := b.Input("a0")
	b0 := b.Input("b0")
	a1 := b.Input("a1")
	b1 := b.Input("b1")
	e0 := b.Xnor("e0", a0, b0)
	e1 := b.Xnor("e1", a1, b1)
	b.Output(b.And("eq", e0, e1))
	return b.Net
}

func TestVarOrderInterleaves(t *testing.T) {
	nw := buildComparator2()
	order := VarOrder(nw)
	if len(order) != 4 {
		t.Fatalf("order covers %d inputs, want 4", len(order))
	}
	// DFS from eq visits e0 (a0, b0) then e1 (a1, b1).
	if order["a0"] != 0 || order["b0"] != 1 || order["a1"] != 2 || order["b1"] != 3 {
		t.Fatalf("order = %v, want a0,b0,a1,b1", order)
	}
}

func TestVarOrderCoversUnusedInputs(t *testing.T) {
	nw := network.New("un")
	a := nw.AddInput("a")
	nw.AddInput("unused")
	y := nw.AddNode("y", []*network.Node{a}, logic.MustCover("1"))
	nw.MarkOutput(y)
	order := VarOrder(nw)
	if len(order) != 2 {
		t.Fatalf("order = %v, want both inputs", order)
	}
}

func TestCompileBooleanMatchesEval(t *testing.T) {
	nw := buildComparator2()
	order := VarOrder(nw)
	m := New(len(order), 0)
	outs, err := CompileBoolean(m, nw, order)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outputs = %d", len(outs))
	}
	assign := make([]bool, 4)
	for v := 0; v < 16; v++ {
		in := map[string]bool{}
		for name, level := range order {
			val := v&(1<<uint(level)) != 0
			in[name] = val
			assign[level] = val
		}
		want, err := nw.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		if m.Eval(outs[0], assign) != want[0] {
			t.Fatalf("BDD differs from network at %d", v)
		}
	}
}

func TestCompileBooleanMissingLevel(t *testing.T) {
	nw := buildComparator2()
	m := New(1, 0)
	if _, err := CompileBoolean(m, nw, map[string]int{"a0": 0}); err == nil {
		t.Fatal("missing input level accepted")
	}
}

func TestCompileThresholdMatchesEval(t *testing.T) {
	tn := core.NewNetwork("thr")
	tn.AddInput("a")
	tn.AddInput("b")
	tn.AddInput("c")
	if err := tn.AddGate(&core.Gate{
		Name: "g", Inputs: []string{"a", "b", "c"}, Weights: []int{2, -1, 1}, T: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&core.Gate{
		Name: "f", Inputs: []string{"g", "c"}, Weights: []int{1, 1}, T: 2,
	}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	tn.MarkOutput("a") // a PI as output

	levels := map[string]int{"a": 0, "b": 1, "c": 2}
	m := New(3, 0)
	outs, err := CompileThreshold(m, tn, levels)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]bool, 3)
	for v := 0; v < 8; v++ {
		in := map[string]bool{}
		for name, level := range levels {
			val := v&(1<<uint(level)) != 0
			in[name] = val
			assign[level] = val
		}
		want, err := tn.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if m.Eval(outs[i], assign) != want[i] {
				t.Fatalf("output %d differs at %d", i, v)
			}
		}
	}
}

func TestCompileThresholdErrors(t *testing.T) {
	tn := core.NewNetwork("bad")
	tn.AddInput("a")
	if err := tn.AddGate(&core.Gate{Name: "f", Inputs: []string{"a"}, Weights: []int{1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	m := New(1, 0)
	if _, err := CompileThreshold(m, tn, map[string]int{}); err == nil {
		t.Fatal("missing input level accepted")
	}
	tn.Outputs = append(tn.Outputs, "ghost")
	if _, err := CompileThreshold(m, tn, map[string]int{"a": 0}); err == nil {
		t.Fatal("undriven output accepted")
	}
}

func TestManagerAccessors(t *testing.T) {
	m := New(5, 0)
	if m.NumVars() != 5 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
	if m.Size() != 2 {
		t.Fatalf("fresh manager size = %d, want 2 terminals", m.Size())
	}
	if _, err := m.Var(0); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("size after one var = %d", m.Size())
	}
}
