package bdd

import (
	"math/rand"
	"testing"

	"tels/internal/logic"
)

func mustVar(t *testing.T, m *Manager, i int) Ref {
	t.Helper()
	v, err := m.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTerminalsAndVars(t *testing.T) {
	m := New(3, 0)
	x := mustVar(t, m, 0)
	if !m.Eval(x, []bool{true, false, false}) || m.Eval(x, []bool{false, true, true}) {
		t.Fatal("Var(0) evaluates wrong")
	}
	if m.Eval(False, []bool{true, true, true}) || !m.Eval(True, []bool{false, false, false}) {
		t.Fatal("terminals evaluate wrong")
	}
	if _, err := m.Var(3); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(2, 0)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	// a∧b built two ways must be the same node.
	ab1, err := m.And(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := m.Not(b)
	na, _ := m.Not(a)
	or, _ := m.Or(na, nb)
	ab2, err := m.Not(or) // ¬(¬a ∨ ¬b)
	if err != nil {
		t.Fatal(err)
	}
	if ab1 != ab2 {
		t.Fatalf("canonicity violated: %d vs %d", ab1, ab2)
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(4)
		m := New(n, 0)
		// Build two random functions as OR of random cubes, tracking a
		// reference truth table.
		build := func() (Ref, []bool) {
			f := False
			tt := make([]bool, 1<<uint(n))
			for c := 0; c < 1+rng.Intn(3); c++ {
				cube := True
				mask, val := 0, 0
				for i := 0; i < n; i++ {
					switch rng.Intn(3) {
					case 0:
						v := mustVar(t, m, i)
						cube, _ = m.And(cube, v)
						mask |= 1 << uint(i)
						val |= 1 << uint(i)
					case 1:
						v := mustVar(t, m, i)
						nv, _ := m.Not(v)
						cube, _ = m.And(cube, nv)
						mask |= 1 << uint(i)
					}
				}
				f, _ = m.Or(f, cube)
				for x := 0; x < len(tt); x++ {
					if x&mask == val {
						tt[x] = true
					}
				}
			}
			return f, tt
		}
		f, ft := build()
		g, gt := build()
		and, _ := m.And(f, g)
		or, _ := m.Or(f, g)
		xor, _ := m.Xor(f, g)
		nf, _ := m.Not(f)
		assign := make([]bool, n)
		for x := 0; x < 1<<uint(n); x++ {
			for i := 0; i < n; i++ {
				assign[i] = x&(1<<uint(i)) != 0
			}
			if m.Eval(f, assign) != ft[x] || m.Eval(g, assign) != gt[x] {
				t.Fatalf("iter %d: base functions wrong", iter)
			}
			if m.Eval(and, assign) != (ft[x] && gt[x]) {
				t.Fatalf("iter %d: and wrong at %d", iter, x)
			}
			if m.Eval(or, assign) != (ft[x] || gt[x]) {
				t.Fatalf("iter %d: or wrong at %d", iter, x)
			}
			if m.Eval(xor, assign) != (ft[x] != gt[x]) {
				t.Fatalf("iter %d: xor wrong at %d", iter, x)
			}
			if m.Eval(nf, assign) == ft[x] {
				t.Fatalf("iter %d: not wrong at %d", iter, x)
			}
		}
	}
}

func TestSatCount(t *testing.T) {
	m := New(4, 0)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	and, _ := m.And(a, b)
	if got := m.SatCount(and); got != 4 { // a∧b over 4 vars: 2^2 assignments
		t.Fatalf("SatCount(a*b) = %v, want 4", got)
	}
	or, _ := m.Or(a, b)
	if got := m.SatCount(or); got != 12 {
		t.Fatalf("SatCount(a+b) = %v, want 12", got)
	}
	if got := m.SatCount(True); got != 16 {
		t.Fatalf("SatCount(1) = %v, want 16", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(0) = %v, want 0", got)
	}
}

func TestAnySat(t *testing.T) {
	m := New(3, 0)
	a, c := mustVar(t, m, 0), mustVar(t, m, 2)
	na, _ := m.Not(a)
	f, _ := m.And(na, c) // !x0 * x2
	assign := m.AnySat(f)
	if assign == nil || !m.Eval(f, assign) {
		t.Fatalf("AnySat returned non-witness %v", assign)
	}
	if m.AnySat(False) != nil {
		t.Fatal("AnySat(0) should be nil")
	}
}

func TestThresholdGateBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		m := New(n, 0)
		inputs := make([]Ref, n)
		for i := range inputs {
			inputs[i] = mustVar(t, m, i)
		}
		weights := make([]int, n)
		for i := range weights {
			weights[i] = rng.Intn(9) - 4
		}
		thr := rng.Intn(7) - 3
		f, err := m.Threshold(inputs, weights, thr)
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]bool, n)
		for x := 0; x < 1<<uint(n); x++ {
			sum := 0
			for i := 0; i < n; i++ {
				assign[i] = x&(1<<uint(i)) != 0
				if assign[i] {
					sum += weights[i]
				}
			}
			if m.Eval(f, assign) != (sum >= thr) {
				t.Fatalf("iter %d: threshold BDD wrong at %d (w=%v T=%d)", iter, x, weights, thr)
			}
		}
	}
}

func TestThresholdMismatchedArity(t *testing.T) {
	m := New(2, 0)
	if _, err := m.Threshold([]Ref{True}, []int{1, 2}, 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestNodeLimit(t *testing.T) {
	// A 16-bit comparator-equality with bad ordering needs exponential
	// nodes; a tiny budget must trip ErrNodeLimit rather than hang.
	n := 32
	m := New(n, 200)
	eq := True
	var err error
	for i := 0; i < 16; i++ {
		a := mustVar(t, m, i)    // a bits first,
		b := mustVar(t, m, 16+i) // b bits last: worst-case order
		x, e := m.Xor(a, b)
		if e != nil {
			err = e
			break
		}
		nx, e := m.Not(x)
		if e != nil {
			err = e
			break
		}
		eq, e = m.And(eq, nx)
		if e != nil {
			err = e
			break
		}
	}
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

func TestCoverBDD(t *testing.T) {
	m := New(3, 0)
	fanins := make([]Ref, 3)
	for i := range fanins {
		fanins[i] = mustVar(t, m, i)
	}
	cover := logic.MustCover("1-0", "01-")
	f, err := coverBDD(m, cover, fanins)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]bool, 3)
	for x := 0; x < 8; x++ {
		for i := 0; i < 3; i++ {
			assign[i] = x&(1<<uint(i)) != 0
		}
		if m.Eval(f, assign) != cover.Eval(assign) {
			t.Fatalf("coverBDD wrong at %d", x)
		}
	}
}
