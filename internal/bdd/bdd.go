// Package bdd implements reduced ordered binary decision diagrams with an
// ITE-based apply engine. The simulator uses it to prove — not sample —
// functional equivalence between a Boolean network and its synthesized
// threshold network: both are compiled into one manager under a shared
// variable order and compared for structural identity.
package bdd

import (
	"errors"
	"fmt"
)

// Ref is a node reference within a Manager. The constants False and True
// refer to the terminal nodes.
type Ref int32

// Terminal nodes, valid in every manager.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable level (smaller = closer to the root)
	lo, hi Ref
}

// ErrNodeLimit is returned when an operation would grow the manager past
// its configured node budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Manager owns the shared node store, unique table, and operation cache.
type Manager struct {
	nodes    []node
	unique   map[node]Ref
	iteCache map[iteKey]Ref
	numVars  int
	maxNodes int
}

type iteKey struct{ f, g, h Ref }

// DefaultMaxNodes bounds manager growth; equivalence checking falls back
// to simulation when a cone exceeds it.
const DefaultMaxNodes = 2_000_000

// New creates a manager with numVars variables (levels 0..numVars-1) and
// the given node budget (0 selects DefaultMaxNodes).
func New(numVars, maxNodes int) *Manager {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	m := &Manager{
		unique:   make(map[node]Ref),
		iteCache: make(map[iteKey]Ref),
		numVars:  numVars,
		maxNodes: maxNodes,
	}
	// Terminals occupy slots 0 and 1 with an out-of-range level.
	m.nodes = append(m.nodes,
		node{level: int32(numVars), lo: False, hi: False},
		node{level: int32(numVars), lo: True, hi: True},
	)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || i >= m.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, m.numVars)
	}
	return m.mk(int32(i), False, True)
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules.
func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.maxNodes {
		return False, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r, nil
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h), the universal binary operator.
func (m *Manager) ITE(f, g, h Ref) (Ref, error) {
	// Terminal cases.
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := iteKey{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r, nil
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo, err := m.ITE(f0, g0, h0)
	if err != nil {
		return False, err
	}
	hi, err := m.ITE(f1, g1, h1)
	if err != nil {
		return False, err
	}
	r, err := m.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	m.iteCache[key] = r
	return r, nil
}

func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Not returns the complement.
func (m *Manager) Not(f Ref) (Ref, error) { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, ng, g)
}

// Eval evaluates the function on a complete assignment (indexed by level).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all NumVars
// variables as a float64 (exact for < 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(r Ref) float64 // assignments of variables below r's level
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		lo := count(n.lo) * pow2(int(m.level(n.lo))-int(n.level)-1)
		hi := count(n.hi) * pow2(int(m.level(n.hi))-int(n.level)-1)
		v := lo + hi
		memo[r] = v
		return v
	}
	return count(f) * pow2(int(m.level(f)))
}

func pow2(k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= 2
	}
	return v
}

// AnySat returns one satisfying assignment, or nil for the constant-0
// function. Unconstrained variables are reported as false.
func (m *Manager) AnySat(f Ref) []bool {
	if f == False {
		return nil
	}
	assign := make([]bool, m.numVars)
	for f != True {
		n := m.nodes[f]
		if n.lo != False {
			f = n.lo
		} else {
			assign[n.level] = true
			f = n.hi
		}
	}
	return assign
}

// Threshold builds the BDD of a linear threshold gate over the given
// input functions: output 1 iff Σ weights[i]·inputs[i] ≥ t. Inputs are
// processed in order with running-sum bounding, which keeps comparator-
// and adder-style gates compact.
func (m *Manager) Threshold(inputs []Ref, weights []int, t int) (Ref, error) {
	if len(inputs) != len(weights) {
		return False, fmt.Errorf("bdd: %d inputs but %d weights", len(inputs), len(weights))
	}
	// Suffix sums of positive and negative weights bound the reachable
	// totals, terminating recursion early.
	n := len(weights)
	maxRest := make([]int, n+1)
	minRest := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		maxRest[i] = maxRest[i+1]
		minRest[i] = minRest[i+1]
		if weights[i] > 0 {
			maxRest[i] += weights[i]
		} else {
			minRest[i] += weights[i]
		}
	}
	type key struct {
		i   int
		rem int
	}
	memo := make(map[key]Ref)
	var rec func(i, rem int) (Ref, error)
	rec = func(i, rem int) (Ref, error) {
		if minRest[i] >= rem {
			return True, nil
		}
		if maxRest[i] < rem {
			return False, nil
		}
		k := key{i, rem}
		if r, ok := memo[k]; ok {
			return r, nil
		}
		hi, err := rec(i+1, rem-weights[i])
		if err != nil {
			return False, err
		}
		lo, err := rec(i+1, rem)
		if err != nil {
			return False, err
		}
		r, err := m.ITE(inputs[i], hi, lo)
		if err != nil {
			return False, err
		}
		memo[k] = r
		return r, nil
	}
	return rec(0, t)
}
