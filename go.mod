module tels

go 1.22
