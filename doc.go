// Package tels is a Go reproduction of "Synthesis and Optimization of
// Threshold Logic Networks with Application to Nanotechnologies"
// (Zhang, Gupta, Zhong, Jha — DATE 2004): the TELS threshold-logic
// synthesizer, its SIS-style multi-level Boolean optimization substrate,
// an ILP solver, the recreated MCNC benchmark suite, and the experiment
// harness that regenerates the paper's Table I and Figures 10–12.
//
// The implementation lives under internal/; see README.md for the map and
// examples/ for runnable entry points. Benchmarks for every table and
// figure are in bench_test.go at the repository root.
package tels
