// Nanotech: the paper's end goal — map a synthesized threshold network
// onto RTD/HFET monostable-bistable logic elements (MOBILEs, Fig. 1 of
// the paper) and report device counts and RTD area.
package main

import (
	"fmt"
	"log"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/rtd"
	"tels/internal/sim"
)

func main() {
	src := mcnc.Build("adder4")
	alg := opt.Algebraic(src)
	tn, _, err := core.Synthesize(alg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Prove(src, tn, 1); err != nil {
		log.Fatal(err)
	}

	nl, err := rtd.Map(tn)
	if err != nil {
		log.Fatal(err)
	}
	s := nl.Stats()
	fmt.Printf("Circuit: %s\n", src.Name)
	fmt.Printf("Threshold network: %d LTGs, %d levels\n", tn.GateCount(), func() int {
		_, d := tn.Levels()
		return d
	}())
	fmt.Printf("MOBILE mapping:    %d elements, %d RTDs, %d HFETs, RTD area %d (Eq. 14)\n\n",
		s.Mobiles, s.RTDs, s.HFETs, s.Area)

	fmt.Println("First two elements of the netlist:")
	text, err := nl.WriteString()
	if err != nil {
		log.Fatal(err)
	}
	lines := 0
	for _, line := range splitLines(text) {
		fmt.Println(line)
		lines++
		if lines > 12 {
			fmt.Println("...")
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
