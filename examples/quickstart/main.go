// Quickstart: build a small Boolean network in code, synthesize a
// threshold-gate network from it, inspect the weight–threshold vectors,
// and verify functional equivalence by exhaustive simulation.
package main

import (
	"fmt"
	"log"

	"tels/internal/core"
	"tels/internal/network"
	"tels/internal/sim"
)

func main() {
	// The paper's motivational example (Fig. 2(a)):
	//   f = (x1 x2 x3 + !x1 x4) x5 + x6 x7
	b := network.NewBuilder("fig2a")
	x := make([]*network.Node, 8)
	for i := 1; i <= 7; i++ {
		x[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	n4 := b.And("n4", x[1], x[2], x[3])
	n5 := b.And("n5", b.Not("inv", x[1]), x[4])
	n3 := b.Or("n3", n4, n5)
	n1 := b.And("n1", n3, x[5])
	n2 := b.And("n2", x[6], x[7])
	b.Output(b.Or("f", n1, n2))

	boolStats := b.Net.Stats()
	fmt.Printf("Boolean network: %d gates, %d levels\n", boolStats.Gates, boolStats.Levels)

	// Synthesize with the paper's Fig. 2(b) setting: fanin restriction 4,
	// defect tolerances δon = 0 and δoff = 1.
	tn, stats, err := core.Synthesize(b.Net, core.Options{Fanin: 4, DeltaOn: 0, DeltaOff: 1})
	if err != nil {
		log.Fatal(err)
	}

	s := tn.Stats()
	fmt.Printf("Threshold network: %d gates, %d levels, area %d (Eq. 14)\n", s.Gates, s.Levels, s.Area)
	fmt.Printf("Synthesis: %d ILP checks, %d collapses, %d unate + %d binate splits\n\n",
		stats.ILPCalls, stats.Collapses, stats.UnateSplits, stats.BinateSplits)

	fmt.Println("Linear threshold gates (output fires when Σ wᵢxᵢ ≥ T):")
	for _, g := range tn.Gates {
		fmt.Printf("  %s\n", g)
	}

	if err := sim.Equivalent(b.Net, tn, 1); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("\nVerified: threshold network matches the Boolean network on all 128 input vectors.")
}
