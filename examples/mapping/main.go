// Mapping: the file-level flow — parse a BLIF netlist, optimize it,
// synthesize threshold logic, emit the .tln netlist, and read it back.
// This is what cmd/tels does, shown through the library API.
package main

import (
	"fmt"
	"log"

	"tels/internal/blif"
	"tels/internal/core"
	"tels/internal/opt"
	"tels/internal/sim"
)

// A small ISCAS-style fragment: a 2-bit equality detector with an enable.
const source = `
.model eq2
.inputs a0 a1 b0 b1 en
.outputs eq
.names a0 b0 x0
00 1
11 1
.names a1 b1 x1
00 1
11 1
.names x0 x1 en eq
111 1
.end
`

func main() {
	src, err := blif.ParseString(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Parsed %s: %d inputs, %d outputs, %d nodes\n",
		src.Name, len(src.Inputs), len(src.Outputs), src.GateCount())

	alg := opt.Algebraic(src)
	tn, _, err := core.Synthesize(alg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Equivalent(src, tn, 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThreshold netlist (.tln):")
	text := tn.String()
	fmt.Print(text)

	// Round-trip through the textual format.
	back, err := core.ParseTLNString(text)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Equivalent(src, back, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRound trip through .tln verified against the BLIF source.")

	// And the original network re-emitted as BLIF for other tools.
	blifText, err := blif.WriteString(alg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOptimized Boolean network as BLIF:\n%s", blifText)
}
