// Defects: the paper's §VI-C experiment on one circuit — synthesize with
// growing defect tolerance δon, disturb every weight by v·U(−0.5, 0.5),
// and measure how often the circuit still computes correctly. Larger δon
// buys robustness at the cost of area (Figs. 11 and 12).
package main

import (
	"fmt"
	"log"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

func main() {
	src := mcnc.Build("cm85a") // 4-bit comparator with enable
	alg := opt.Algebraic(src)
	fmt.Printf("Circuit: %s (%d inputs, %d outputs)\n\n", src.Name, len(src.Inputs), len(src.Outputs))

	vs := []float64{0.0, 0.4, 0.8, 1.2, 1.6, 2.0}
	fmt.Printf("%5s |", "v")
	for don := 0; don <= 3; don++ {
		fmt.Printf("  δon=%d |", don)
	}
	fmt.Printf(" %s\n", "(failure rate; area in header below)")

	areas := make([]int, 4)
	pairs := make([]sim.Pair, 4)
	for don := 0; don <= 3; don++ {
		tn, _, err := core.Synthesize(alg, core.Options{Fanin: 3, DeltaOn: don, DeltaOff: 1})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Equivalent(src, tn, 1); err != nil {
			log.Fatalf("δon=%d: %v", don, err)
		}
		areas[don] = tn.Area()
		pairs[don] = sim.Pair{Name: src.Name, Bool: src, Threshold: tn}
	}
	fmt.Printf("%5s |", "area")
	for don := 0; don <= 3; don++ {
		fmt.Printf(" %6d |", areas[don])
	}
	fmt.Println()
	fmt.Println("-------" + "+--------+--------+--------+--------+")

	for _, v := range vs {
		fmt.Printf("%5.1f |", v)
		for don := 0; don <= 3; don++ {
			rate, err := sim.FailureRate([]sim.Pair{pairs[don]}, v,
				sim.FailureRateConfig{Trials: 30, Seed: 42})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %5.0f%% |", 100*rate)
		}
		fmt.Println()
	}
	fmt.Println("\nRead across a row: higher δon tolerates more weight variation.")
	fmt.Println("Read the area line: the robustness is paid for in RTD area (Eq. 14).")
}
