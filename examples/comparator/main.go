// Comparator: reproduce the paper's flow on the comp benchmark family —
// optimize the Boolean network with the algebraic and Boolean scripts,
// map it one-to-one and with TELS, and sweep the fanin restriction to see
// the Fig. 10 effect: relaxing ψ shrinks the one-to-one mapping rapidly
// while TELS stays nearly flat.
package main

import (
	"fmt"
	"log"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
	"tels/internal/sim"
)

func main() {
	src := mcnc.Build("comp8") // 8-bit magnitude comparator
	fmt.Printf("Source: %s — %d inputs, %d outputs, %d nodes\n\n",
		src.Name, len(src.Inputs), len(src.Outputs), src.GateCount())

	boolNet := opt.Boolean(src)
	algNet := opt.Algebraic(src)
	fmt.Printf("script.boolean:   %d nodes, %d literals\n",
		boolNet.GateCount(), boolNet.Stats().Literals)
	fmt.Printf("script.algebraic: %d nodes, %d literals\n\n",
		algNet.GateCount(), algNet.Stats().Literals)

	fmt.Printf("%6s | %18s | %18s\n", "ψ", "one-to-one (gates)", "TELS (gates)")
	fmt.Println("-------+--------------------+-------------------")
	for psi := 3; psi <= 8; psi++ {
		o := core.Options{Fanin: psi, DeltaOn: 0, DeltaOff: 1}
		oneToOne, err := core.OneToOne(boolNet, o)
		if err != nil {
			log.Fatal(err)
		}
		tels, _, err := core.Synthesize(algNet, o)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Equivalent(src, tels, 1); err != nil {
			log.Fatalf("ψ=%d: %v", psi, err)
		}
		fmt.Printf("%6d | %18d | %18d\n", psi, oneToOne.GateCount(), tels.GateCount())
	}
	fmt.Println("\nAll TELS networks verified against the source comparator.")
}
