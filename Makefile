# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race benchsmoke sweepsmoke cover bench fuzz experiments examples serve ci clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/sim/ ./internal/opt/ ./internal/expt/ ./internal/service/ ./internal/fsim/
	$(GO) test -race -run 'Sweep|Session|V1' -count=2 ./internal/service/ ./internal/fsim/

# benchsmoke compiles and runs the packed-vs-scalar Fig. 11 benchmark once
# (correctness smoke, not a measurement).
benchsmoke:
	$(GO) test -run=NONE -bench=Fig11Inner -benchtime=1x .

# sweepsmoke fans a tiny 3-point grid through an in-process sweep job
# (quick Fig. 11 path through the service, correctness smoke).
sweepsmoke:
	$(GO) run ./cmd/telsbench -quick sweep

# serve runs the synthesis daemon on :8455 (override with ADDR=...).
ADDR ?= :8455
serve:
	$(GO) run ./cmd/telsd -addr $(ADDR)

# ci is the exact gate GitHub Actions runs.
ci: build test race benchsmoke sweepsmoke

cover:
	$(GO) test -cover ./internal/... ./cmd/...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/blif/
	$(GO) test -fuzz FuzzParseTLN -fuzztime 30s ./internal/core/

experiments:
	$(GO) run ./cmd/telsbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/comparator
	$(GO) run ./examples/defects
	$(GO) run ./examples/mapping
	$(GO) run ./examples/nanotech

clean:
	$(GO) clean ./...
