# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race benchsmoke sweepsmoke resynsmoke widthsmoke storesmoke clustersmoke apismoke pbsatsmoke netsmoke cover bench fuzz experiments examples serve ci clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/pbsat/ ./internal/sim/ ./internal/opt/ ./internal/expt/ ./internal/service/ ./internal/fsim/ ./internal/resyn/ ./internal/store/ ./internal/cluster/
	$(GO) test -race -run 'Sweep|Session|V1|Resyn|Run' -count=2 ./internal/service/ ./internal/fsim/ ./internal/resyn/

# benchsmoke compiles and runs the packed-vs-scalar Fig. 11 benchmark once
# (correctness smoke, not a measurement).
benchsmoke:
	$(GO) test -run=NONE -bench=Fig11Inner -benchtime=1x .

# sweepsmoke fans a tiny 3-point grid through an in-process sweep job
# (quick Fig. 11 path through the service, correctness smoke).
sweepsmoke:
	$(GO) run ./cmd/telsbench -quick sweep

# resynsmoke drives two selective re-synthesis iterations on a tiny MCNC
# benchmark through the resyn job kind (correctness smoke).
resynsmoke:
	@f=$$(mktemp); $(GO) run ./cmd/benchgen -q mux4 > $$f \
		&& $(GO) run ./cmd/telsim -don 1 -v 1.2 -trials 300 -target 0.999 -maxiters 2 resyn $$f; \
		s=$$?; rm -f $$f; exit $$s

# widthsmoke proves the lane-width refactor under the vectorizing build:
# GOAMD64=v3 build plus the cross-width bit-identity suites, then one
# quick W=1 vs 4 vs 8 timing sweep of the Fig. 11 inner loop.
widthsmoke:
	GOAMD64=v3 $(GO) build ./...
	GOAMD64=v3 $(GO) test ./internal/fsim/ ./internal/sim/
	GOAMD64=v3 $(GO) run ./cmd/telsbench -quick fsimwidth

# storesmoke proves the durability layer end to end: WAL unit tests
# (torn-tail truncation, rotation, compaction), the service-level
# restart/drain recovery tests, and the kill-a-real-daemon-mid-sweep
# integration test, then one quick append/recovery microbench.
storesmoke:
	$(GO) test -count=1 ./internal/store/
	$(GO) test -count=1 -run 'TestRestart|TestDrain|TestCrash' ./internal/service/
	$(GO) test -count=1 -run 'TestKillMidSweepRecovers|TestSigtermDrainRequeues' ./cmd/telsd/
	$(GO) run ./cmd/telsbench -quick store

# clustersmoke proves the cluster dispatch end to end: the ring,
# breaker, and policy unit tests, the service-level fan-out / steal /
# hedge / readiness tests, the SIGKILL-a-real-peer-mid-sweep integration
# test (three telsd processes on loopback, curve must stay bit-identical
# to single node), then one quick 1/2/4-peer scaling run.
clustersmoke:
	$(GO) test -count=1 ./internal/cluster/
	$(GO) test -count=1 -run 'TestCluster|TestCompute|TestReadyz|TestClientWait|TestListRejects' ./internal/service/
	$(GO) test -count=1 -run 'TestClusterKillPeerMidSweep' ./cmd/telsd/
	$(GO) run ./cmd/telsbench -quick cluster

# apismoke proves the multi-tenant v1 surface end to end: the envelope
# conformance sweep, tenant scoping with the ?tenant= filter, priority
# and quota enforcement (429 + Retry-After while other tenants flow),
# the weighted-fair starvation scenario against the FIFO baseline, SSE
# exactly-once streaming, tenant-preserving restart recovery, tenant
# propagation across a 3-peer ring, a booted two-tenant telsd walked
# over real HTTP, then one quick fair-vs-fifo admission benchmark.
apismoke:
	$(GO) test -count=1 -run 'TestV1|TestTenant|TestPriority|TestQuota|TestWeightedFair|TestRestartPreservesTenant|TestPreTenantJournal|TestSSE|TestSubscribe|TestCluster.*Tenant|TestOverloaded|TestMetricsExpose' ./internal/service/
	$(GO) test -count=1 -run 'TestAPISmokeMultiTenant' ./cmd/telsd/
	$(GO) run ./cmd/telsbench -quick tenants

# pbsatsmoke proves the threshold-check solver portfolio: the pbsat CDCL
# unit tests, the cross-engine identity and cache-transparency suites
# (exhaustive n≤4 plus randomized wide functions, both under -race since
# the portfolio races goroutines), the whole-flow synthesize-identically
# corpus test, then one quick ilp-vs-pbsat-vs-portfolio timing run.
pbsatsmoke:
	$(GO) test -count=1 ./internal/pbsat/
	$(GO) test -race -count=1 -run 'TestPortfolio|TestPbsat|TestPBRefutation|TestPBDecide|TestUnsatCache|TestBudgetBailout|TestParseSolverMode' ./internal/core/
	$(GO) test -count=1 -short -run 'TestSolverModesSynthesizeIdentically|TestThreshBenchQuick' ./internal/expt/
	$(GO) run ./cmd/telsbench -quick thresh

# netsmoke proves the structurally-hashed network core: the arena unit
# and fuzz-seed suites under -race, the whole-corpus golden identity gate
# (every MCNC benchmark byte-identical through the arena-backed passes),
# then one quick pointer-vs-arena build/collapse/sweep measurement.
netsmoke:
	$(GO) test -race -count=1 ./internal/netcore/
	$(GO) test -race -count=1 -short -run 'TestCorpusGolden' ./internal/expt/
	$(GO) run ./cmd/telsbench -quick netcore

# serve runs the synthesis daemon on :8455 (override with ADDR=...).
ADDR ?= :8455
serve:
	$(GO) run ./cmd/telsd -addr $(ADDR)

# ci is the exact gate GitHub Actions runs.
ci: build test race benchsmoke sweepsmoke resynsmoke widthsmoke storesmoke clustersmoke apismoke pbsatsmoke netsmoke

cover:
	$(GO) test -cover ./internal/... ./cmd/...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/blif/
	$(GO) test -fuzz FuzzStrash -fuzztime 30s ./internal/netcore/
	$(GO) test -fuzz FuzzParseTLN -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzPortfolio -fuzztime 30s ./internal/core/

experiments:
	$(GO) run ./cmd/telsbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/comparator
	$(GO) run ./examples/defects
	$(GO) run ./examples/mapping
	$(GO) run ./examples/nanotech

clean:
	$(GO) clean ./...
